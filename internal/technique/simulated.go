package technique

import (
	"fmt"
	"time"

	"repro/internal/crypto"
	"repro/internal/relation"
)

// Simulated wraps a real (NoInd-style) search with a calibrated virtual-time
// cost model for secure-hardware and MPC systems we cannot deploy here
// (Intel SGX / Opaque and multi-party Jana). The substitution preserves the
// quantity Table VI depends on — how many encrypted tuples each query forces
// the system to process obliviously — and charges the paper's measured
// per-tuple cost for them. SimulatedTime in the returned Stats is the
// virtual wall-clock; the real cryptographic work (AES-GCM on every row) is
// still performed, so correctness is tested end to end.
type Simulated struct {
	name     string
	perTuple time.Duration // oblivious processing cost per scanned tuple
	fixed    time.Duration // per-query fixed cost (enclave/MPC setup)
	inner    *NoInd
}

// Calibration constants fitted to the paper's reported absolute numbers
// (§V-B): Opaque answers a selection over 6M tuples in 89 s; Jana over 1M
// tuples in 1051 s. A selection forces both systems to touch every tuple.
// The fixed per-query setup cost (enclave entry / MPC circuit setup) is the
// intercept of the Table VI series (≈10 s for both systems); the per-tuple
// rate is the remainder of the headline number spread over the scan.
const (
	opaqueSeconds = 89.0
	opaqueTuples  = 6_000_000
	janaSeconds   = 1051.0
	janaTuples    = 1_000_000
	fixedSeconds  = 10.0
)

// NewSimOpaque builds the Opaque cost model.
func NewSimOpaque(keys *crypto.KeySet) (*Simulated, error) {
	return newSimulated("SimOpaque", keys, opaqueSeconds, opaqueTuples)
}

// NewSimJana builds the Jana cost model.
func NewSimJana(keys *crypto.KeySet) (*Simulated, error) {
	return newSimulated("SimJana", keys, janaSeconds, janaTuples)
}

func newSimulated(name string, keys *crypto.KeySet, seconds float64, tuples int) (*Simulated, error) {
	inner, err := NewNoInd(keys)
	if err != nil {
		return nil, fmt.Errorf("technique: %s: %w", name, err)
	}
	per := time.Duration((seconds - fixedSeconds) / float64(tuples) * float64(time.Second))
	fixed := time.Duration(fixedSeconds * float64(time.Second))
	return &Simulated{name: name, perTuple: per, fixed: fixed, inner: inner}, nil
}

// Name implements Technique.
func (s *Simulated) Name() string { return s.name }

// Indexable implements Technique.
func (s *Simulated) Indexable() bool { return false }

// StoredRows implements Technique.
func (s *Simulated) StoredRows() int { return s.inner.StoredRows() }

// PerTupleCost returns the calibrated per-tuple oblivious-processing cost.
func (s *Simulated) PerTupleCost() time.Duration { return s.perTuple }

// FixedCost returns the per-query setup cost of the model.
func (s *Simulated) FixedCost() time.Duration { return s.fixed }

// Outsource implements Technique.
func (s *Simulated) Outsource(rows []Row) (*Stats, error) { return s.inner.Outsource(rows) }

// Search implements Technique: real work via the inner technique, virtual
// time from the calibrated model.
func (s *Simulated) Search(values []relation.Value) ([][]byte, *Stats, error) {
	payloads, st, err := s.inner.Search(values)
	if err != nil {
		return nil, nil, err
	}
	st.SimulatedTime = s.fixed + time.Duration(st.TuplesScanned)*s.perTuple
	return payloads, st, nil
}

// SearchBatch implements Technique as a per-query fallback: the simulated
// systems charge a fixed per-query setup cost (enclave entry / MPC circuit
// initialisation), so sharing work across a batch would falsify the very
// cost model the technique exists to reproduce. Every query runs Search
// and pays full freight; the aggregate SimulatedTime is the sum.
func (s *Simulated) SearchBatch(queries [][]relation.Value) ([][][]byte, *Stats, error) {
	return fallbackSearchBatch(s, queries)
}

// SimulateFullScan returns the virtual time for a query that must scan n
// tuples, without doing the work — used by the analytical side of Table VI.
func (s *Simulated) SimulateFullScan(n int) time.Duration {
	return s.fixed + time.Duration(n)*s.perTuple
}
