package technique

import "repro/internal/storage"

// EncStore abstracts the cloud-side encrypted store, so a technique can run
// against the in-process store or a remote cloud over the wire protocol.
// *storage.EncryptedStore is the canonical implementation.
type EncStore interface {
	// Add uploads one encrypted row and returns its cloud address.
	Add(tupleCT, attrCT, token []byte) int
	// Len reports the number of stored rows.
	Len() int
	// AttrColumn returns the encrypted searchable-attribute column.
	AttrColumn() []storage.EncRow
	// Fetch returns the full rows at the given addresses.
	Fetch(addrs []int) ([]storage.EncRow, error)
	// LookupToken returns the addresses indexed under tok.
	LookupToken(tok []byte) []int
	// Rows exposes all rows (the honest-but-curious adversary's at-rest
	// view).
	Rows() []storage.EncRow
}

var _ EncStore = (*storage.EncryptedStore)(nil)
