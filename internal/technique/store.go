package technique

import "repro/internal/storage"

// EncStore abstracts the cloud-side encrypted store, so a technique can run
// against the in-process store or a remote cloud over the wire protocol.
// *storage.EncryptedStore is the canonical implementation.
type EncStore interface {
	// Add uploads one encrypted row and returns its cloud address.
	Add(tupleCT, attrCT, token []byte) int
	// Len reports the number of stored rows.
	Len() int
	// AttrColumn returns the encrypted searchable-attribute column.
	AttrColumn() []storage.EncRow
	// Fetch returns the full rows at the given addresses.
	Fetch(addrs []int) ([]storage.EncRow, error)
	// LookupToken returns the addresses indexed under tok.
	LookupToken(tok []byte) []int
	// Rows exposes all rows (the honest-but-curious adversary's at-rest
	// view).
	Rows() []storage.EncRow
}

// BatchEncStore is an EncStore that can serve a whole batch's reads in one
// operation — over the wire protocol, one round trip instead of one per
// query. Techniques with a batched search path type-assert for it and fall
// back to per-query calls when the store does not provide it.
type BatchEncStore interface {
	EncStore
	// FetchBatch returns the full rows for each address list in
	// addrBatches, indexed like addrBatches.
	FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error)
}

var (
	_ EncStore      = (*storage.EncryptedStore)(nil)
	_ BatchEncStore = (*storage.EncryptedStore)(nil)
)
