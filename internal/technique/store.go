package technique

import "repro/internal/storage"

// EncStore abstracts the cloud-side encrypted store, so a technique can run
// against the in-process store or a remote cloud over the wire protocol.
// *storage.EncryptedStore is the canonical implementation.
type EncStore interface {
	// Add uploads one encrypted row and returns its cloud address.
	Add(tupleCT, attrCT, token []byte) int
	// Len reports the number of stored rows.
	Len() int
	// AttrColumn returns the encrypted searchable-attribute column.
	AttrColumn() []storage.EncRow
	// Fetch returns the full rows at the given addresses.
	Fetch(addrs []int) ([]storage.EncRow, error)
	// LookupToken returns the addresses indexed under tok.
	LookupToken(tok []byte) []int
	// Rows exposes all rows (the honest-but-curious adversary's at-rest
	// view).
	Rows() []storage.EncRow
}

// BatchEncStore is an EncStore that can serve a whole batch's reads in one
// operation — over the wire protocol, one round trip instead of one per
// query. Techniques with a batched search path type-assert for it and fall
// back to per-query calls when the store does not provide it.
type BatchEncStore interface {
	EncStore
	// FetchBatch returns the full rows for each address list in
	// addrBatches, indexed like addrBatches.
	FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error)
}

// VersionedEncStore is an EncStore whose contents carry a cheap version
// counter, enabling owner-side cross-query caching: instead of re-pulling
// the whole attribute column (or padded table) on every query, a cache-
// enabled technique asks the store for "everything since the version I
// hold" and gets back a tiny not-modified answer — or just the appended
// tail — when nothing (or little) changed. Over the wire protocol this
// turns the dominant per-query transfer into a constant-size round trip.
//
// The version is an (Epoch, N) pair: Epoch identifies one store instance
// (it changes on restore-from-snapshot, so a cache can never survive into
// a state that silently lost writes) and N counts writes within the
// instance. Techniques must treat versions as opaque: only the store
// decides whether a held version is still serviceable.
type VersionedEncStore interface {
	EncStore
	// EncVersion returns the store's current version.
	EncVersion() (storage.EncVersion, error)
	// AttrColumnSince returns the attribute column conditionally: if v is
	// current-epoch and the caller already holds `have` rows, only the rows
	// at addresses >= have come back and delta is true (an empty delta
	// means not modified); otherwise the full column comes back with
	// delta false. cur is the version the returned data is consistent with.
	AttrColumnSince(v storage.EncVersion, have int) (rows []storage.EncRow, cur storage.EncVersion, delta bool, err error)
	// RowsSince is AttrColumnSince for full rows (payload + attribute +
	// token), serving techniques that cache the whole padded table.
	RowsSince(v storage.EncVersion, have int) (rows []storage.EncRow, cur storage.EncVersion, delta bool, err error)
}

var (
	_ EncStore          = (*storage.EncryptedStore)(nil)
	_ BatchEncStore     = (*storage.EncryptedStore)(nil)
	_ VersionedEncStore = (*storage.EncryptedStore)(nil)
)
