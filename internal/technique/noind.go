package technique

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/storage"
)

// NoInd is the search procedure the paper implemented on the two commercial
// non-deterministically encrypted databases ("systems A and B", §V-B):
// since the cloud cannot search non-deterministic ciphertexts, the owner
// (round 1) retrieves the encrypted searching-attribute column, decrypts it
// locally, finds the addresses matching the |SB| predicates, and (round 2)
// fetches the full tuples at those addresses.
//
// NoInd keeps no mutable owner-side state of its own: concurrent searches
// are safe because the cipher is stateless, the store synchronises
// internally, and the optional Cache synchronises internally too.
type NoInd struct {
	keys  *crypto.KeySet
	prob  *crypto.Probabilistic
	store EncStore

	// cache/vstore are set together by SetCache when the store supports
	// version counters: searches then revalidate the cached decrypted
	// column instead of re-pulling it, and reuse cached payload
	// decryptions. Both stay nil for the classic stateless behaviour.
	cache  *Cache
	vstore VersionedEncStore
}

// NewNoInd builds the technique over the derived key set.
func NewNoInd(keys *crypto.KeySet) (*NoInd, error) {
	return NewNoIndOn(keys, storage.NewEncryptedStore())
}

// NewNoIndOn builds the technique over an explicit store (e.g. a remote
// cloud's).
func NewNoIndOn(keys *crypto.KeySet, store EncStore) (*NoInd, error) {
	prob, err := crypto.NewProbabilistic(keys.Enc)
	if err != nil {
		return nil, fmt.Errorf("technique: noind: %w", err)
	}
	return &NoInd{keys: keys, prob: prob, store: store}, nil
}

// Name implements Technique.
func (n *NoInd) Name() string { return "NoInd" }

// Indexable implements Technique.
func (n *NoInd) Indexable() bool { return false }

// StoredRows implements Technique.
func (n *NoInd) StoredRows() int { return n.store.Len() }

// Store exposes the cloud-side encrypted store for the adversary model.
func (n *NoInd) Store() EncStore { return n.store }

// SetCache attaches (or, with nil, detaches) an owner-side version cache.
// It takes effect only when the underlying store supports version counters
// (VersionedEncStore — the in-process store and every wire backend do) and
// must be called before the technique is shared across goroutines.
func (n *NoInd) SetCache(c *Cache) {
	if vs, ok := n.store.(VersionedEncStore); ok && c != nil {
		n.cache, n.vstore = c, vs
		return
	}
	n.cache, n.vstore = nil, nil
}

// cachedColumn returns the decrypted attribute column via the cache: the
// cached prefix is revalidated by one conditional round trip, only the
// appended tail (or, on a miss, the whole column) is transferred and
// decrypted, and the extended column is published back. The returned
// slices are shared read-only; epoch identifies the store instance the
// column (and any payload reuse) is consistent with.
func (n *NoInd) cachedColumn(st *Stats) (vals []relation.Value, addrs []int, epoch uint64, err error) {
	ver, vals, addrs, ctBytes := n.cache.colSnapshot()
	rows, cur, delta, err := n.vstore.AttrColumnSince(ver, len(vals))
	if err != nil {
		return nil, nil, 0, err
	}
	if delta {
		st.CacheHits++
		st.CacheBytesSaved += ctBytes
		n.cache.recordHit(ctBytes)
	} else {
		vals, addrs, ctBytes = nil, nil, 0
		st.CacheMisses++
		n.cache.recordMiss()
	}
	st.TuplesScanned += len(rows)
	st.TuplesTransferred += len(rows)
	if len(rows) == 0 {
		return vals, addrs, cur.Epoch, nil
	}
	nv := make([]relation.Value, len(vals), len(vals)+len(rows))
	copy(nv, vals)
	na := make([]int, len(addrs), len(addrs)+len(rows))
	copy(na, addrs)
	var scratch []byte
	for _, row := range rows {
		st.BytesTransferred += len(row.AttrCT)
		ctBytes += len(row.AttrCT)
		pt, err := n.prob.DecryptAppend(scratch[:0], row.AttrCT)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("technique: noind attr decrypt addr %d: %w", row.Addr, err)
		}
		scratch = pt
		st.EncOps++
		v, _, err := relation.DecodeValue(pt)
		if err != nil {
			return nil, nil, 0, err
		}
		nv = append(nv, v)
		na = append(na, row.Addr)
	}
	n.cache.colStore(cur, nv, na, ctBytes)
	return nv, na, cur.Epoch, nil
}

// fetchPayloads serves round 2 through the payload cache: only addresses
// without a cached decryption are fetched (no round trip at all when every
// address is cached), fresh decryptions are cached for the next query, and
// the results come back in addrs order — exactly what the uncached Fetch
// path returns.
func (n *NoInd) fetchPayloads(st *Stats, epoch uint64, addrs []int) ([][]byte, error) {
	found, ctSaved := n.cache.payloadGet(epoch, addrs)
	if ctSaved > 0 {
		st.CacheBytesSaved += ctSaved
		n.cache.recordSaved(ctSaved)
	}
	missing := addrs
	if len(found) > 0 {
		missing = make([]int, 0, len(addrs)-len(found))
		for _, a := range addrs {
			if _, ok := found[a]; !ok {
				missing = append(missing, a)
			}
		}
	}
	var rows []storage.EncRow
	if len(missing) > 0 {
		var err error
		rows, err = n.store.Fetch(missing)
		if err != nil {
			return nil, err
		}
	}
	payloads := make([][]byte, 0, len(addrs))
	next := 0
	for _, a := range addrs {
		if pt, ok := found[a]; ok {
			payloads = append(payloads, pt)
			continue
		}
		if next >= len(rows) {
			return nil, fmt.Errorf("technique: noind fetch returned %d rows for %d addresses", len(rows), len(missing))
		}
		r := rows[next]
		next++
		pt, err := n.prob.Decrypt(r.TupleCT)
		if err != nil {
			return nil, fmt.Errorf("technique: noind tuple decrypt addr %d: %w", r.Addr, err)
		}
		st.EncOps++
		st.TuplesTransferred++
		st.BytesTransferred += len(r.TupleCT)
		n.cache.payloadPut(epoch, r.Addr, pt, len(r.TupleCT))
		payloads = append(payloads, pt)
	}
	return payloads, nil
}

// searchCached is Search with the version cache engaged: round 1 shrinks
// to a conditional column pull (a constant-size not-modified answer in the
// steady state) and round 2 only fetches addresses whose decryptions are
// not already cached. Results and ReturnedAddrs are identical to the
// uncached path; the cloud-observed accesses are a subset of it.
func (n *NoInd) searchCached(values []relation.Value) ([][]byte, *Stats, error) {
	st := &Stats{Rounds: 2}
	want := make(map[relation.Value]bool, len(values))
	for _, v := range values {
		want[v] = true
	}
	vals, colAddrs, epoch, err := n.cachedColumn(st)
	if err != nil {
		return nil, nil, err
	}
	var addrs []int
	for i, v := range vals {
		if want[v] {
			addrs = append(addrs, colAddrs[i])
		}
	}
	payloads, err := n.fetchPayloads(st, epoch, addrs)
	if err != nil {
		return nil, nil, err
	}
	st.ReturnedAddrs = addrs
	return payloads, st, nil
}

// Outsource implements Technique: both the attribute cell and the full
// tuple are probabilistically encrypted, so equal values are
// indistinguishable at rest.
func (n *NoInd) Outsource(rows []Row) (*Stats, error) {
	st := &Stats{Rounds: 1}
	for _, r := range rows {
		attrCT, err := n.prob.Encrypt(r.Attr.Encode())
		if err != nil {
			return nil, err
		}
		tupleCT, err := n.prob.Encrypt(r.Payload)
		if err != nil {
			return nil, err
		}
		n.store.Add(tupleCT, attrCT, nil)
		st.EncOps += 2
		st.TuplesTransferred++
		st.BytesTransferred += len(attrCT) + len(tupleCT)
	}
	return st, nil
}

// Search implements Technique.
func (n *NoInd) Search(values []relation.Value) ([][]byte, *Stats, error) {
	if n.cache != nil {
		return n.searchCached(values)
	}
	st := &Stats{Rounds: 2}
	// Values are comparable, so the predicate set is keyed by the value
	// itself — no per-row Key() string materialisation in the scan below.
	want := make(map[relation.Value]bool, len(values))
	for _, v := range values {
		want[v] = true
	}

	// Round 1: pull the encrypted attribute column and match locally. The
	// decrypted cell only lives for one iteration, so one scratch buffer
	// serves the whole scan.
	col := n.store.AttrColumn()
	st.TuplesScanned += len(col)
	st.TuplesTransferred += len(col)
	var addrs []int
	var scratch []byte
	for _, row := range col {
		st.BytesTransferred += len(row.AttrCT)
		pt, err := n.prob.DecryptAppend(scratch[:0], row.AttrCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: noind attr decrypt addr %d: %w", row.Addr, err)
		}
		scratch = pt
		st.EncOps++
		v, _, err := relation.DecodeValue(pt)
		if err != nil {
			return nil, nil, err
		}
		if want[v] {
			addrs = append(addrs, row.Addr)
		}
	}

	// Round 2: fetch the matching tuples by address.
	rows, err := n.store.Fetch(addrs)
	if err != nil {
		return nil, nil, err
	}
	payloads := make([][]byte, 0, len(rows))
	for _, r := range rows {
		pt, err := n.prob.Decrypt(r.TupleCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: noind tuple decrypt addr %d: %w", r.Addr, err)
		}
		st.EncOps++
		st.TuplesTransferred++
		st.BytesTransferred += len(r.TupleCT)
		payloads = append(payloads, pt)
	}
	st.ReturnedAddrs = addrs
	return payloads, st, nil
}

// SearchBatch implements Technique with real cross-query sharing: the
// encrypted attribute column is pulled and decrypted once for the whole
// batch (the redundant per-query pull is exactly what batching amortises),
// each query's matching addresses are found in that single pass, and the
// matched tuples come back in one batched fetch round trip when the store
// supports it. A tuple matched by several queries is decrypted once.
// Shared work — the column scan and each distinct tuple decryption — is
// counted once in the batch-level Stats; PerQuery[i] carries query i's
// access pattern and result transfers.
func (n *NoInd) SearchBatch(queries [][]relation.Value) ([][][]byte, *Stats, error) {
	if n.cache != nil {
		return n.searchBatchCached(queries)
	}
	nq := len(queries)
	agg := &Stats{Rounds: 2, PerQuery: make([]*Stats, nq)}
	out := make([][][]byte, nq)
	if nq == 0 {
		return out, agg, nil
	}
	// Queries carrying the same predicate slice are the same bin retrieval
	// (Bins.Retrieve hands out one shared value slice per bin): match and
	// fetch each distinct slice once, then share the rows. rep[i] is the
	// lowest query index with the same backing slice as query i.
	rep := make([]int, nq)
	firstFor := make(map[*relation.Value]int, nq)
	for i, q := range queries {
		rep[i] = i
		if len(q) == 0 {
			continue
		}
		if j, ok := firstFor[&q[0]]; ok {
			rep[i] = j
		} else {
			firstFor[&q[0]] = i
		}
	}

	// Inverted predicate index: value -> the representative queries
	// wanting it, so the column pass costs one lookup per row, not one
	// per (row, query). Values are comparable, so the map is keyed by the
	// value itself and the scan below never materialises Key() strings.
	wantedBy := make(map[relation.Value][]int)
	for i, q := range queries {
		agg.PerQuery[i] = &Stats{Rounds: 2}
		if rep[i] != i {
			continue
		}
		for _, v := range q {
			if qs := wantedBy[v]; len(qs) == 0 || qs[len(qs)-1] != i {
				wantedBy[v] = append(qs, i)
			}
		}
	}

	// Round 1, shared: one column pull and one decryption pass serve
	// every query in the batch. The decrypted cell only lives for one
	// iteration, so one scratch buffer serves the whole scan.
	col := n.store.AttrColumn()
	agg.TuplesScanned = len(col)
	agg.TuplesTransferred = len(col)
	addrs := make([][]int, nq)
	var scratch []byte
	for _, row := range col {
		agg.BytesTransferred += len(row.AttrCT)
		pt, err := n.prob.DecryptAppend(scratch[:0], row.AttrCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: noind attr decrypt addr %d: %w", row.Addr, err)
		}
		scratch = pt
		agg.EncOps++
		v, _, err := relation.DecodeValue(pt)
		if err != nil {
			return nil, nil, err
		}
		for _, qi := range wantedBy[v] {
			addrs[qi] = append(addrs[qi], row.Addr)
		}
	}

	// Round 2, batched: one round trip fetches every representative
	// query's matches (duplicate bin retrievals ride along as empty
	// address lists and share the representative's decrypted payloads and
	// transfer accounting).
	rowBatches, err := fetchBatch(n.store, addrs)
	if err != nil {
		return nil, nil, err
	}
	opened := make(map[int][]byte)
	for qi, rows := range rowBatches {
		per := agg.PerQuery[qi]
		if r := rep[qi]; r != qi {
			repPer := agg.PerQuery[r]
			per.TuplesTransferred = repPer.TuplesTransferred
			per.BytesTransferred = repPer.BytesTransferred
			per.ReturnedAddrs = repPer.ReturnedAddrs
			out[qi] = out[r]
			agg.TuplesTransferred += per.TuplesTransferred
			agg.BytesTransferred += per.BytesTransferred
			continue
		}
		payloads := make([][]byte, 0, len(rows))
		for _, r := range rows {
			pt, ok := opened[r.Addr]
			if !ok {
				pt, err = n.prob.Decrypt(r.TupleCT)
				if err != nil {
					return nil, nil, fmt.Errorf("technique: noind tuple decrypt addr %d: %w", r.Addr, err)
				}
				agg.EncOps++ // shared: repeated across queries, opened once
				opened[r.Addr] = pt
			}
			per.TuplesTransferred++
			per.BytesTransferred += len(r.TupleCT)
			payloads = append(payloads, pt)
		}
		per.ReturnedAddrs = addrs[qi]
		out[qi] = payloads
		agg.TuplesTransferred += per.TuplesTransferred
		agg.BytesTransferred += per.BytesTransferred
	}
	return out, agg, nil
}

// searchBatchCached is SearchBatch with the version cache engaged: the
// shared column pull becomes one conditional round trip, and round 2
// fetches only the batch-wide union of addresses whose decryptions are not
// already cached — at most one fetch round trip per batch, none in the
// steady state. Results and per-query access patterns are identical to the
// uncached batch; the cloud-observed accesses are a subset of it.
func (n *NoInd) searchBatchCached(queries [][]relation.Value) ([][][]byte, *Stats, error) {
	nq := len(queries)
	agg := &Stats{Rounds: 2, PerQuery: make([]*Stats, nq)}
	out := make([][][]byte, nq)
	if nq == 0 {
		return out, agg, nil
	}
	// Identical bin-retrieval sharing as the uncached path: rep[i] is the
	// lowest query index with the same backing predicate slice as query i.
	rep := make([]int, nq)
	firstFor := make(map[*relation.Value]int, nq)
	for i, q := range queries {
		rep[i] = i
		if len(q) == 0 {
			continue
		}
		if j, ok := firstFor[&q[0]]; ok {
			rep[i] = j
		} else {
			firstFor[&q[0]] = i
		}
	}
	wantedBy := make(map[relation.Value][]int)
	for i, q := range queries {
		agg.PerQuery[i] = &Stats{Rounds: 2}
		if rep[i] != i {
			continue
		}
		for _, v := range q {
			if qs := wantedBy[v]; len(qs) == 0 || qs[len(qs)-1] != i {
				wantedBy[v] = append(qs, i)
			}
		}
	}

	// Round 1, shared and cached: one conditional pull revalidates the
	// decrypted column for the whole batch.
	vals, colAddrs, epoch, err := n.cachedColumn(agg)
	if err != nil {
		return nil, nil, err
	}
	addrs := make([][]int, nq)
	for i, v := range vals {
		for _, qi := range wantedBy[v] {
			addrs[qi] = append(addrs[qi], colAddrs[i])
		}
	}

	// Round 2: fetch the batch-wide union of uncached addresses in one
	// round trip (an address matched by several queries is fetched and
	// decrypted once, like the uncached path's opened map).
	var need []int
	seen := make(map[int]bool)
	for qi := range queries {
		if rep[qi] != qi {
			continue
		}
		for _, a := range addrs[qi] {
			if !seen[a] {
				seen[a] = true
				need = append(need, a)
			}
		}
	}
	found, ctSaved := n.cache.payloadGet(epoch, need)
	if ctSaved > 0 {
		agg.CacheBytesSaved += ctSaved
		n.cache.recordSaved(ctSaved)
	}
	missing := need
	if len(found) > 0 {
		missing = make([]int, 0, len(need)-len(found))
		for _, a := range need {
			if _, ok := found[a]; !ok {
				missing = append(missing, a)
			}
		}
	}
	var rows []storage.EncRow
	if len(missing) > 0 {
		rows, err = n.store.Fetch(missing)
		if err != nil {
			return nil, nil, err
		}
	}
	opened := make(map[int][]byte, len(need))
	ctLen := make(map[int]int, len(rows))
	for a, pt := range found {
		opened[a] = pt
	}
	for _, r := range rows {
		pt, err := n.prob.Decrypt(r.TupleCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: noind tuple decrypt addr %d: %w", r.Addr, err)
		}
		agg.EncOps++ // shared: repeated across queries, opened once
		opened[r.Addr] = pt
		ctLen[r.Addr] = len(r.TupleCT)
		n.cache.payloadPut(epoch, r.Addr, pt, len(r.TupleCT))
	}

	for qi := range queries {
		per := agg.PerQuery[qi]
		if r := rep[qi]; r != qi {
			repPer := agg.PerQuery[r]
			per.TuplesTransferred = repPer.TuplesTransferred
			per.BytesTransferred = repPer.BytesTransferred
			per.ReturnedAddrs = repPer.ReturnedAddrs
			out[qi] = out[r]
			agg.TuplesTransferred += per.TuplesTransferred
			agg.BytesTransferred += per.BytesTransferred
			continue
		}
		payloads := make([][]byte, 0, len(addrs[qi]))
		for _, a := range addrs[qi] {
			pt, ok := opened[a]
			if !ok {
				return nil, nil, fmt.Errorf("technique: noind batch missing fetched addr %d", a)
			}
			if cl := ctLen[a]; cl > 0 {
				per.TuplesTransferred++
				per.BytesTransferred += cl
			}
			payloads = append(payloads, pt)
		}
		per.ReturnedAddrs = addrs[qi]
		out[qi] = payloads
		agg.TuplesTransferred += per.TuplesTransferred
		agg.BytesTransferred += per.BytesTransferred
	}
	return out, agg, nil
}
