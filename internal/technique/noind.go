package technique

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/storage"
)

// NoInd is the search procedure the paper implemented on the two commercial
// non-deterministically encrypted databases ("systems A and B", §V-B):
// since the cloud cannot search non-deterministic ciphertexts, the owner
// (round 1) retrieves the encrypted searching-attribute column, decrypts it
// locally, finds the addresses matching the |SB| predicates, and (round 2)
// fetches the full tuples at those addresses.
//
// NoInd keeps no mutable owner-side state: concurrent searches are safe
// because the cipher is stateless and the store synchronises internally.
type NoInd struct {
	keys  *crypto.KeySet
	prob  *crypto.Probabilistic
	store EncStore
}

// NewNoInd builds the technique over the derived key set.
func NewNoInd(keys *crypto.KeySet) (*NoInd, error) {
	return NewNoIndOn(keys, storage.NewEncryptedStore())
}

// NewNoIndOn builds the technique over an explicit store (e.g. a remote
// cloud's).
func NewNoIndOn(keys *crypto.KeySet, store EncStore) (*NoInd, error) {
	prob, err := crypto.NewProbabilistic(keys.Enc)
	if err != nil {
		return nil, fmt.Errorf("technique: noind: %w", err)
	}
	return &NoInd{keys: keys, prob: prob, store: store}, nil
}

// Name implements Technique.
func (n *NoInd) Name() string { return "NoInd" }

// Indexable implements Technique.
func (n *NoInd) Indexable() bool { return false }

// StoredRows implements Technique.
func (n *NoInd) StoredRows() int { return n.store.Len() }

// Store exposes the cloud-side encrypted store for the adversary model.
func (n *NoInd) Store() EncStore { return n.store }

// Outsource implements Technique: both the attribute cell and the full
// tuple are probabilistically encrypted, so equal values are
// indistinguishable at rest.
func (n *NoInd) Outsource(rows []Row) (*Stats, error) {
	st := &Stats{Rounds: 1}
	for _, r := range rows {
		attrCT, err := n.prob.Encrypt(r.Attr.Encode())
		if err != nil {
			return nil, err
		}
		tupleCT, err := n.prob.Encrypt(r.Payload)
		if err != nil {
			return nil, err
		}
		n.store.Add(tupleCT, attrCT, nil)
		st.EncOps += 2
		st.TuplesTransferred++
		st.BytesTransferred += len(attrCT) + len(tupleCT)
	}
	return st, nil
}

// Search implements Technique.
func (n *NoInd) Search(values []relation.Value) ([][]byte, *Stats, error) {
	st := &Stats{Rounds: 2}
	// Values are comparable, so the predicate set is keyed by the value
	// itself — no per-row Key() string materialisation in the scan below.
	want := make(map[relation.Value]bool, len(values))
	for _, v := range values {
		want[v] = true
	}

	// Round 1: pull the encrypted attribute column and match locally. The
	// decrypted cell only lives for one iteration, so one scratch buffer
	// serves the whole scan.
	col := n.store.AttrColumn()
	st.TuplesScanned += len(col)
	st.TuplesTransferred += len(col)
	var addrs []int
	var scratch []byte
	for _, row := range col {
		st.BytesTransferred += len(row.AttrCT)
		pt, err := n.prob.DecryptAppend(scratch[:0], row.AttrCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: noind attr decrypt addr %d: %w", row.Addr, err)
		}
		scratch = pt
		st.EncOps++
		v, _, err := relation.DecodeValue(pt)
		if err != nil {
			return nil, nil, err
		}
		if want[v] {
			addrs = append(addrs, row.Addr)
		}
	}

	// Round 2: fetch the matching tuples by address.
	rows, err := n.store.Fetch(addrs)
	if err != nil {
		return nil, nil, err
	}
	payloads := make([][]byte, 0, len(rows))
	for _, r := range rows {
		pt, err := n.prob.Decrypt(r.TupleCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: noind tuple decrypt addr %d: %w", r.Addr, err)
		}
		st.EncOps++
		st.TuplesTransferred++
		st.BytesTransferred += len(r.TupleCT)
		payloads = append(payloads, pt)
	}
	st.ReturnedAddrs = addrs
	return payloads, st, nil
}

// SearchBatch implements Technique with real cross-query sharing: the
// encrypted attribute column is pulled and decrypted once for the whole
// batch (the redundant per-query pull is exactly what batching amortises),
// each query's matching addresses are found in that single pass, and the
// matched tuples come back in one batched fetch round trip when the store
// supports it. A tuple matched by several queries is decrypted once.
// Shared work — the column scan and each distinct tuple decryption — is
// counted once in the batch-level Stats; PerQuery[i] carries query i's
// access pattern and result transfers.
func (n *NoInd) SearchBatch(queries [][]relation.Value) ([][][]byte, *Stats, error) {
	nq := len(queries)
	agg := &Stats{Rounds: 2, PerQuery: make([]*Stats, nq)}
	out := make([][][]byte, nq)
	if nq == 0 {
		return out, agg, nil
	}
	// Queries carrying the same predicate slice are the same bin retrieval
	// (Bins.Retrieve hands out one shared value slice per bin): match and
	// fetch each distinct slice once, then share the rows. rep[i] is the
	// lowest query index with the same backing slice as query i.
	rep := make([]int, nq)
	firstFor := make(map[*relation.Value]int, nq)
	for i, q := range queries {
		rep[i] = i
		if len(q) == 0 {
			continue
		}
		if j, ok := firstFor[&q[0]]; ok {
			rep[i] = j
		} else {
			firstFor[&q[0]] = i
		}
	}

	// Inverted predicate index: value -> the representative queries
	// wanting it, so the column pass costs one lookup per row, not one
	// per (row, query). Values are comparable, so the map is keyed by the
	// value itself and the scan below never materialises Key() strings.
	wantedBy := make(map[relation.Value][]int)
	for i, q := range queries {
		agg.PerQuery[i] = &Stats{Rounds: 2}
		if rep[i] != i {
			continue
		}
		for _, v := range q {
			if qs := wantedBy[v]; len(qs) == 0 || qs[len(qs)-1] != i {
				wantedBy[v] = append(qs, i)
			}
		}
	}

	// Round 1, shared: one column pull and one decryption pass serve
	// every query in the batch. The decrypted cell only lives for one
	// iteration, so one scratch buffer serves the whole scan.
	col := n.store.AttrColumn()
	agg.TuplesScanned = len(col)
	agg.TuplesTransferred = len(col)
	addrs := make([][]int, nq)
	var scratch []byte
	for _, row := range col {
		agg.BytesTransferred += len(row.AttrCT)
		pt, err := n.prob.DecryptAppend(scratch[:0], row.AttrCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: noind attr decrypt addr %d: %w", row.Addr, err)
		}
		scratch = pt
		agg.EncOps++
		v, _, err := relation.DecodeValue(pt)
		if err != nil {
			return nil, nil, err
		}
		for _, qi := range wantedBy[v] {
			addrs[qi] = append(addrs[qi], row.Addr)
		}
	}

	// Round 2, batched: one round trip fetches every representative
	// query's matches (duplicate bin retrievals ride along as empty
	// address lists and share the representative's decrypted payloads and
	// transfer accounting).
	rowBatches, err := fetchBatch(n.store, addrs)
	if err != nil {
		return nil, nil, err
	}
	opened := make(map[int][]byte)
	for qi, rows := range rowBatches {
		per := agg.PerQuery[qi]
		if r := rep[qi]; r != qi {
			repPer := agg.PerQuery[r]
			per.TuplesTransferred = repPer.TuplesTransferred
			per.BytesTransferred = repPer.BytesTransferred
			per.ReturnedAddrs = repPer.ReturnedAddrs
			out[qi] = out[r]
			agg.TuplesTransferred += per.TuplesTransferred
			agg.BytesTransferred += per.BytesTransferred
			continue
		}
		payloads := make([][]byte, 0, len(rows))
		for _, r := range rows {
			pt, ok := opened[r.Addr]
			if !ok {
				pt, err = n.prob.Decrypt(r.TupleCT)
				if err != nil {
					return nil, nil, fmt.Errorf("technique: noind tuple decrypt addr %d: %w", r.Addr, err)
				}
				agg.EncOps++ // shared: repeated across queries, opened once
				opened[r.Addr] = pt
			}
			per.TuplesTransferred++
			per.BytesTransferred += len(r.TupleCT)
			payloads = append(payloads, pt)
		}
		per.ReturnedAddrs = addrs[qi]
		out[qi] = payloads
		agg.TuplesTransferred += per.TuplesTransferred
		agg.BytesTransferred += per.BytesTransferred
	}
	return out, agg, nil
}
