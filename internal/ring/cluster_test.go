package ring

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/wire"
)

var testRingTok = []byte("test-cluster-secret")

// testNode is one ring member: a real wire.Cloud on a TCP loopback
// listener that tracks accepted connections, so kill() severs live
// clients too — closing only the listener would leave established
// transports working and no failover would ever trigger.
type testNode struct {
	t    *testing.T
	addr string

	mu    sync.Mutex
	lis   net.Listener
	conns map[net.Conn]struct{}
}

type trackedListener struct {
	net.Listener
	n *testNode
}

func (tl trackedListener) Accept() (net.Conn, error) {
	c, err := tl.Listener.Accept()
	if err == nil {
		tl.n.mu.Lock()
		tl.n.conns[c] = struct{}{}
		tl.n.mu.Unlock()
	}
	return c, err
}

// startTestNode boots a fresh empty node on an ephemeral port.
func startTestNode(t *testing.T) *testNode {
	t.Helper()
	n := &testNode{t: t}
	n.start("127.0.0.1:0")
	t.Cleanup(n.kill)
	return n
}

// start serves a brand-new (empty) cloud on the given address.
func (n *testNode) start(addr string) {
	n.t.Helper()
	var lis net.Listener
	var err error
	// Rebinding the same port right after a kill can transiently fail.
	for i := 0; i < 50; i++ {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		n.t.Fatalf("listen %s: %v", addr, err)
	}
	cl := wire.NewCloud()
	cl.SetRingToken(testRingTok)
	n.mu.Lock()
	n.lis = lis
	n.conns = make(map[net.Conn]struct{})
	n.mu.Unlock()
	n.addr = lis.Addr().String()
	go func() { _ = cl.Serve(trackedListener{Listener: lis, n: n}) }()
}

// kill severs the node completely: listener and every accepted conn.
func (n *testNode) kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lis != nil {
		n.lis.Close()
		n.lis = nil
	}
	for c := range n.conns {
		c.Close()
	}
	n.conns = nil
}

// restartEmpty kills the node and brings an empty replacement up on the
// SAME address — the rejoining-node scenario.
func (n *testNode) restartEmpty() {
	n.t.Helper()
	n.kill()
	n.start(n.addr)
}

// dialNode opens a throwaway control connection (fresh each call, since
// kills sever previously dialed clients).
func dialNode(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func nodeInfo(t *testing.T, addr, ns string) wire.StoreInfo {
	t.Helper()
	info, err := dialNode(t, addr).StoreInfo(ns)
	if err != nil {
		t.Fatalf("StoreInfo(%s) on %s: %v", ns, addr, err)
	}
	return info
}

func nodeRows(t *testing.T, addr, ns string) []storage.EncRow {
	t.Helper()
	return dialNode(t, addr).WithStore(ns).Rows()
}

func sameRows(a, b []storage.EncRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || !bytes.Equal(a[i].TupleCT, b[i].TupleCT) ||
			!bytes.Equal(a[i].AttrCT, b[i].AttrCT) || !bytes.Equal(a[i].Token, b[i].Token) {
			return false
		}
	}
	return true
}

func intRelation(n int) *relation.Relation {
	rel := relation.New(relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
	))
	for i := 0; i < n; i++ {
		rel.MustInsert(relation.Int(int64(i)))
	}
	return rel
}

// populateNode loads the plain partition and uploads rows [0, encRows)
// through a direct connection, claiming the namespace with tok.
func populateNode(t *testing.T, addr, ns string, tok []byte, encRows int) {
	t.Helper()
	sc := dialNode(t, addr).WithStore(ns)
	sc.SetAdminToken(tok)
	if err := sc.Load(intRelation(10), "K"); err != nil {
		t.Fatalf("load on %s: %v", addr, err)
	}
	appendRows(t, sc, 0, encRows)
}

// appendRows uploads deterministic rows [start, start+n) and flushes.
func appendRows(t *testing.T, sc *wire.StoreClient, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if addr := sc.Add(testRow(i).TupleCT, testRow(i).AttrCT, testRow(i).Token); addr != i {
			t.Fatalf("Add row %d: addr = %d", i, addr)
		}
	}
	if err := sc.Flush(); err != nil {
		t.Fatal(err)
	}
}

func testRow(i int) storage.EncRow {
	return storage.EncRow{
		TupleCT: []byte(fmt.Sprintf("tuple-%d", i)),
		AttrCT:  []byte(fmt.Sprintf("attr-%d", i)),
		Token:   []byte{byte(i % 3)},
	}
}

// TestCoordinatorHealthFlips: liveness changes bump the directory
// version, each flip exactly once, and the conditional blob fetch sees
// them.
func TestCoordinatorHealthFlips(t *testing.T) {
	a, b := startTestNode(t), startTestNode(t)
	co, err := New(Config{Nodes: []string{a.addr, b.addr}, Replicas: 2, RingToken: testRingTok, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Stop()

	co.HealthCheckOnce()
	if v := co.Directory().Version; v != 1 {
		t.Fatalf("healthy sweep bumped version to %d", v)
	}

	b.kill()
	co.HealthCheckOnce()
	dir := co.Directory()
	if dir.Version != 2 {
		t.Fatalf("version after node death = %d, want 2", dir.Version)
	}
	for _, n := range dir.Nodes {
		if want := n.Addr != b.addr; n.Alive != want {
			t.Fatalf("node %s alive = %v, want %v", n.ID, n.Alive, want)
		}
	}
	// Conditional fetch: stale version gets the blob, current does not.
	if blob, ver, changed := co.DirectoryBlob(1); !changed || ver != 2 || len(blob) == 0 {
		t.Fatalf("stale conditional fetch = (%d bytes, %d, %v)", len(blob), ver, changed)
	}
	if blob, ver, changed := co.DirectoryBlob(2); changed || ver != 2 || blob != nil {
		t.Fatalf("current conditional fetch = (%v, %d, %v)", blob, ver, changed)
	}

	b.restartEmpty()
	co.HealthCheckOnce()
	dir = co.Directory()
	if dir.Version != 3 {
		t.Fatalf("version after rejoin = %d, want 3", dir.Version)
	}
	for _, n := range dir.Nodes {
		if !n.Alive {
			t.Fatalf("node %s still dead after rejoin", n.ID)
		}
	}
}

// TestCoordinatorRepairTail: a replica whose encrypted rows lag behind an
// otherwise identical peer is caught up with a tail append, not a full
// snapshot.
func TestCoordinatorRepairTail(t *testing.T) {
	a, b := startTestNode(t), startTestNode(t)
	const ns = "data"
	tok := wire.OwnerToken([]byte("master"), ns)
	populateNode(t, a.addr, ns, tok, 5)
	populateNode(t, b.addr, ns, tok, 5)
	// Three more rows land only on a: b is now a strict prefix.
	sc := dialNode(t, a.addr).WithStore(ns)
	sc.SetAdminToken(tok)
	appendRows(t, sc, 5, 3)

	co, err := New(Config{Nodes: []string{a.addr, b.addr}, Replicas: 2, RingToken: testRingTok, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Stop()

	st := co.RepairOnce()
	if st.Tails != 1 || st.Snapshots != 0 || st.Rows != 3 {
		t.Fatalf("repair stats = %+v, want one 3-row tail", st)
	}
	if got := nodeInfo(t, b.addr, ns); got.EncRows != 8 {
		t.Fatalf("lagging replica has %d rows after repair, want 8", got.EncRows)
	}
	if !sameRows(nodeRows(t, a.addr, ns), nodeRows(t, b.addr, ns)) {
		t.Fatal("replicas diverge after tail repair")
	}
	// A second sweep must find nothing to do.
	if st := co.RepairOnce(); st.Tails+st.Snapshots != 0 {
		t.Fatalf("second sweep repaired again: %+v", st)
	}
}

// TestCoordinatorRepairSnapshot: a replica missing the namespace entirely
// receives a full snapshot, including the plain partition and the claim.
func TestCoordinatorRepairSnapshot(t *testing.T) {
	a, b := startTestNode(t), startTestNode(t)
	const ns = "data"
	tok := wire.OwnerToken([]byte("master"), ns)
	populateNode(t, a.addr, ns, tok, 6)

	co, err := New(Config{Nodes: []string{a.addr, b.addr}, Replicas: 2, RingToken: testRingTok, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Stop()

	st := co.RepairOnce()
	if st.Snapshots != 1 || st.Tails != 0 {
		t.Fatalf("repair stats = %+v, want one snapshot", st)
	}
	src, got := nodeInfo(t, a.addr, ns), nodeInfo(t, b.addr, ns)
	if !got.Exists || got.EncRows != src.EncRows || got.PlainTuples != src.PlainTuples || got.Claimed != src.Claimed {
		t.Fatalf("restored replica %+v != source %+v", got, src)
	}
	if !sameRows(nodeRows(t, a.addr, ns), nodeRows(t, b.addr, ns)) {
		t.Fatal("replicas diverge after snapshot repair")
	}
	// The claim travelled with the snapshot.
	if _, err := dialNode(t, b.addr).AdminStats(ns, tok); err != nil {
		t.Fatalf("owner token refused on restored replica: %v", err)
	}
	if st := co.RepairOnce(); st.Tails+st.Snapshots != 0 {
		t.Fatalf("second sweep repaired again: %+v", st)
	}
}

// startCoordinatorCloud serves co's directory over the wire like qbring
// does, and returns the coordinator address.
func startCoordinatorCloud(t *testing.T, co *Coordinator) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewCloud()
	srv.SetRingDirectory(co.DirectoryBlob)
	srv.SetRingRepair(func(ns string) error {
		co.RepairNamespace(ns)
		return nil
	})
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { lis.Close() })
	return lis.Addr().String()
}

// TestRouterReplicationFailoverRepair walks the full node-loss story on a
// live two-node ring: fan-out parity, read failover off a killed
// preferred replica, quarantined writes under degraded replication,
// snapshot repair of the empty rejoiner, and readmission back to full
// fan-out — ending with byte-identical replicas.
func TestRouterReplicationFailoverRepair(t *testing.T) {
	a, b := startTestNode(t), startTestNode(t)
	nodes := map[string]*testNode{a.addr: a, b.addr: b}
	co, err := New(Config{Nodes: []string{a.addr, b.addr}, Replicas: 2, RingToken: testRingTok, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Stop()
	coAddr := startCoordinatorCloud(t, co)

	router, err := DialRouter(coAddr, RouterOptions{DownCooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	const ns = "data"
	tok := wire.OwnerToken([]byte("master"), ns)
	rs := router.WithStore(ns)
	rs.SetAdminToken(tok)
	if got := rs.Placement(); len(got) != 2 {
		t.Fatalf("placement = %v, want both nodes", got)
	}

	// Phase 1: writes through the router land on BOTH replicas.
	if err := rs.Load(intRelation(10), "K"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if addr := rs.Add(testRow(i).TupleCT, testRow(i).AttrCT, testRow(i).Token); addr != i {
			t.Fatalf("Add row %d: addr = %d", i, addr)
		}
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	for addr := range nodes {
		if info := nodeInfo(t, addr, ns); !info.Exists || info.EncRows != 5 || info.PlainTuples != 10 {
			t.Fatalf("replica %s after fan-out: %+v", addr, info)
		}
	}
	if got := rs.Search([]relation.Value{relation.Int(3)}); len(got) != 1 {
		t.Fatalf("Search = %d tuples, want 1", len(got))
	}

	// Phase 2: kill the preferred replica; reads must fail over without
	// surfacing an owner-visible error, writes must keep committing on the
	// survivor with the dead node quarantined.
	pref := rs.Placement()[0].Addr
	t.Logf("killing preferred replica %s", pref)
	nodes[pref].kill()

	if got := rs.Search([]relation.Value{relation.Int(3)}); len(got) != 1 {
		t.Fatalf("Search after node kill = %d tuples, want 1", len(got))
	}
	if n := rs.LogicalErrCount(); n != 0 {
		t.Fatalf("masked failover leaked %d logical errors", n)
	}
	for i := 5; i < 7; i++ {
		if addr := rs.Add(testRow(i).TupleCT, testRow(i).AttrCT, testRow(i).Token); addr != i {
			t.Fatalf("degraded Add row %d: addr = %d", i, addr)
		}
	}
	if err := rs.Flush(); err != nil {
		t.Fatalf("degraded flush: %v", err)
	}
	inSync := rs.InSync()
	for i, n := range rs.Placement() {
		if want := n.Addr != pref; inSync[i] != want {
			t.Fatalf("inSync[%s] = %v, want %v", n.Addr, inSync[i], want)
		}
	}

	// Phase 3: the dead node rejoins EMPTY on the same address; one repair
	// sweep rebuilds it from the survivor via snapshot.
	nodes[pref].restartEmpty()
	st := co.RepairOnce()
	if st.Snapshots != 1 {
		t.Fatalf("rejoin repair stats = %+v, want one snapshot", st)
	}
	if got := nodeInfo(t, pref, ns); got.EncRows != 7 {
		t.Fatalf("rejoined replica has %d rows, want 7", got.EncRows)
	}

	// Phase 4: the next settled flush readmits the repaired replica, and
	// subsequent writes fan out to both again.
	time.Sleep(60 * time.Millisecond) // let the down-cooldown lapse
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, ok := range rs.InSync() {
		if !ok {
			t.Fatalf("replica %d not readmitted after repair: %v", i, rs.InSync())
		}
	}
	if addr := rs.Add(testRow(7).TupleCT, testRow(7).AttrCT, testRow(7).Token); addr != 7 {
		t.Fatalf("post-readmission Add: addr = %d", addr)
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	rowsA, rowsB := nodeRows(t, a.addr, ns), nodeRows(t, b.addr, ns)
	if len(rowsA) != 8 || !sameRows(rowsA, rowsB) {
		t.Fatalf("replicas diverge after full cycle: %d vs %d rows", len(rowsA), len(rowsB))
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("view transport error with both replicas live: %v", err)
	}
}
