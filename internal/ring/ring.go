// Package ring is the multi-node placement layer: it consistent-hashes
// namespaces across N qbcloud nodes with R-way replication, serves the
// resulting directory from a qbring coordinator over the ordinary wire
// protocol, and gives owner processes a wire.Transport (Router) that
// routes every per-namespace view to its replicas with read failover and
// write fan-out.
//
// Placement is deliberately dumb and deterministic: a virtual-node hash
// ring over the configured node list, a namespace's replicas being the
// first R distinct nodes clockwise from its hash point. Liveness does NOT
// move placement — a dead node keeps its slots and its replicas catch it
// up when it returns (anti-entropy repair, snapshot rejoin) — so a
// node flap never migrates data, it only fails reads over to the
// surviving replica and pauses that replica's writes until repair.
// Placement changes only when the configured membership changes, which
// bumps the directory version and is picked up by clients through a
// conditional fetch.
//
// Replication never widens the paper's adversarial view: every byte a
// replica holds — clear-text partition, ciphertexts, tokens, addresses —
// is exactly the view the single-node cloud already exposed to the
// honest-but-curious operator; R-way replication shows that same view to
// R operators, each of which the threat model already assumes sees
// everything on its machine. Intra-ring transfer is guarded by a cluster
// ring token so tenants cannot inject repair traffic, and tampering by a
// malicious repairer is detectable owner-side because tuple ciphertexts
// are AEAD-sealed under keys the ring never holds.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// VNodes is the number of virtual nodes each physical node projects onto
// the hash ring. 64 points per node keeps the per-namespace load spread
// within a few percent of even for small clusters while the ring stays
// tiny (N*64 points, binary-searched per placement).
const VNodes = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int // index into the directory's node list
}

// Ring is the computed placement structure for one directory generation.
// Build it once per directory version and reuse it; Placement is a binary
// search, not an RPC.
type Ring struct {
	dir    *Directory
	points []point
}

// hash64 maps a key to a ring position. sha256 (truncated) rather than a
// seeded runtime hash: placement must agree across processes — the
// coordinator, every client and qbadmin all compute it independently.
func hash64(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Build computes the hash ring for a directory. Every configured node —
// alive or not — projects VNodes points, so placement is a pure function
// of membership, never of liveness.
func Build(d *Directory) *Ring {
	r := &Ring{dir: d, points: make([]point, 0, len(d.Nodes)*VNodes)}
	var key [8]byte
	for i, n := range d.Nodes {
		for v := 0; v < VNodes; v++ {
			binary.BigEndian.PutUint64(key[:], uint64(v))
			r.points = append(r.points, point{hash: hash64(n.ID + "#" + string(key[:])), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Replicas reports the effective replication factor: the configured R,
// clamped to the node count.
func (r *Ring) Replicas() int {
	n := r.dir.Replicas
	if n < 1 {
		n = 1
	}
	if n > len(r.dir.Nodes) {
		n = len(r.dir.Nodes)
	}
	return n
}

// Placement returns the namespace's replica set: the first R distinct
// nodes clockwise from the namespace's hash point, in ring order. The
// first entry is the namespace's primary — the replica reads prefer and
// repair treats as authoritative on ties.
func (r *Ring) Placement(namespace string) []Node {
	want := r.Replicas()
	out := make([]Node, 0, want)
	if len(r.points) == 0 {
		return out
	}
	h := hash64(namespace)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]struct{}, want)
	for i := 0; i < len(r.points) && len(out) < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, r.dir.Nodes[p.node])
	}
	return out
}
