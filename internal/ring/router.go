package ring

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// RouterOptions tunes the client-side ring transport.
type RouterOptions struct {
	// Reconnect configures each node's reconnecting transport. The zero
	// value selects fast-failover defaults (3 dial attempts, 10ms base /
	// 100ms cap): with a surviving replica one hop away, burning the
	// single-node default's ten capped retries before failing over would
	// turn a node kill into seconds of stall instead of tens of
	// milliseconds.
	Reconnect wire.ReconnectOptions

	// DownCooldown is how long a node transport is skipped after a
	// transport-level failure before a call probes it again (default
	// 500ms). Reads fail over instantly either way; the cooldown only
	// bounds how often a dead node costs a probe.
	DownCooldown time.Duration
}

func (o RouterOptions) reconnect() wire.ReconnectOptions {
	r := o.Reconnect
	if r.MaxRetries == 0 && r.BaseDelay == 0 && r.MaxDelay == 0 {
		r = wire.ReconnectOptions{MaxRetries: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	}
	return r
}

func (o RouterOptions) cooldown() time.Duration {
	if o.DownCooldown <= 0 {
		return 500 * time.Millisecond
	}
	return o.DownCooldown
}

// nodeConn is the router's handle on one ring node: a lazily dialed
// reconnecting transport plus the down-cooldown failure memory. When the
// transport fails permanently (its reconnect cycles exhausted) it is
// discarded and a fresh one is dialed on the next use after the cooldown
// — without this a node that died once could never fail back, because a
// Reconnector's permanent error is sticky by design.
type nodeConn struct {
	node     Node
	dial     func() (*wire.Client, error)
	ropts    wire.ReconnectOptions
	cooldown time.Duration

	mu        sync.Mutex
	tr        *wire.Reconnector
	downUntil time.Time
}

// available reports whether calls should be routed here: not inside the
// failure cooldown window.
func (nc *nodeConn) available() bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return !time.Now().Before(nc.downUntil)
}

// markDown starts (or extends) the cooldown window after a
// transport-level failure.
func (nc *nodeConn) markDown() {
	nc.mu.Lock()
	nc.downUntil = time.Now().Add(nc.cooldown)
	nc.mu.Unlock()
}

// transportDead reports whether the current transport has failed
// permanently.
func (nc *nodeConn) transportDead() bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.tr != nil && nc.tr.Err() != nil
}

// transport returns the node's live transport, dialing a fresh
// Reconnector lazily and replacing one that has permanently failed.
// Replacing drops any upload state retained by the dead transport's
// views; the replicas repair that loss through anti-entropy (see
// ReplicatedStore's quarantine).
func (nc *nodeConn) transport() *wire.Reconnector {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.tr != nil && nc.tr.Err() != nil {
		nc.tr.Close()
		nc.tr = nil
	}
	if nc.tr == nil {
		nc.tr = wire.NewReconnector(nc.dial, nc.ropts)
	}
	return nc.tr
}

// backend returns the node's Backend view of one namespace.
func (nc *nodeConn) backend(name string) wire.Backend {
	return nc.transport().Store(name)
}

// close tears down the node transport.
func (nc *nodeConn) close() error {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.tr == nil {
		return nil
	}
	err := nc.tr.Close()
	nc.tr = nil
	return err
}

// Router is the client-side ring transport: a wire.Transport whose
// per-namespace views are ReplicatedStores routed by the coordinator's
// placement directory. The directory is fetched once at dial time and
// cached under its version counter; Refresh revalidates it with a
// conditional fetch (placement over a static membership never moves, so
// routing needs no per-op directory traffic at all).
type Router struct {
	opts    RouterOptions
	dirConn *wire.Client
	dialTo  func(addr string) (*wire.Client, error)

	mu     sync.Mutex
	dir    *Directory
	ring   *Ring
	nodes  map[string]*nodeConn // by node ID
	stores map[string]*ReplicatedStore
	closed bool
}

var _ wire.Transport = (*Router)(nil)

// DialRouter connects to the qbring coordinator at ringAddr, fetches the
// placement directory, and returns the routing transport.
func DialRouter(ringAddr string, opts RouterOptions) (*Router, error) {
	c, err := wire.Dial(ringAddr)
	if err != nil {
		return nil, fmt.Errorf("ring: dial coordinator %s: %w", ringAddr, err)
	}
	r, err := NewRouter(c, wire.Dial, opts)
	if err != nil {
		c.Close()
		return nil, err
	}
	return r, nil
}

// NewRouter builds a Router over an established coordinator connection
// and a node dialer (tests inject pipe-based dialers here).
func NewRouter(dirConn *wire.Client, dialTo func(addr string) (*wire.Client, error), opts RouterOptions) (*Router, error) {
	dir, err := FetchDirectory(dirConn)
	if err != nil {
		return nil, fmt.Errorf("ring: fetch directory: %w", err)
	}
	if len(dir.Nodes) == 0 {
		return nil, fmt.Errorf("ring: directory version %d lists no nodes", dir.Version)
	}
	r := &Router{
		opts:    opts,
		dirConn: dirConn,
		dialTo:  dialTo,
		dir:     dir,
		ring:    Build(dir),
		nodes:   make(map[string]*nodeConn, len(dir.Nodes)),
		stores:  make(map[string]*ReplicatedStore),
	}
	return r, nil
}

// Directory returns the cached directory.
func (r *Router) Directory() *Directory {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dir
}

// Refresh revalidates the cached directory against the coordinator with a
// conditional fetch and reports whether it changed. Existing namespace
// views keep their placement (membership changes that move placement are
// a re-dial event, not a live migration); fresh views see the new
// directory.
func (r *Router) Refresh() (bool, error) {
	r.mu.Lock()
	known := r.dir.Version
	r.mu.Unlock()
	blob, _, changed, err := r.dirConn.RingDirectory(known)
	if err != nil {
		return false, err
	}
	if !changed {
		return false, nil
	}
	dir, err := DecodeDirectory(blob)
	if err != nil {
		return false, err
	}
	r.mu.Lock()
	r.dir = dir
	r.ring = Build(dir)
	r.mu.Unlock()
	return true, nil
}

// RequestRepair asks the coordinator for one immediate targeted
// anti-entropy round on a namespace (opRingRepair) — the readmission
// path's escape from sweep latency: a writer that finds a quarantined
// replica still short does not wait out the background repair interval
// with reads pinned to the stale replica.
func (r *Router) RequestRepair(ns string) error {
	return r.dirConn.RingRepair(ns)
}

// node returns the connection handle for a placement entry, creating it
// on first use.
func (r *Router) node(n Node) *nodeConn {
	if nc, ok := r.nodes[n.ID]; ok {
		return nc
	}
	addr := n.Addr
	nc := &nodeConn{
		node:     n,
		dial:     func() (*wire.Client, error) { return r.dialTo(addr) },
		ropts:    r.opts.reconnect(),
		cooldown: r.opts.cooldown(),
	}
	r.nodes[n.ID] = nc
	return nc
}

// WithStore returns the replicated view of the named namespace (""
// selects wire.DefaultStore). The same name always yields the same view.
func (r *Router) WithStore(name string) *ReplicatedStore {
	name = canonicalStore(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.stores[name]; ok {
		return s
	}
	placement := r.ring.Placement(name)
	replicas := make([]*nodeConn, len(placement))
	for i, n := range placement {
		replicas[i] = r.node(n)
	}
	s := newReplicatedStore(r, name, replicas)
	r.stores[name] = s
	return s
}

// Store implements wire.Transport.
func (r *Router) Store(name string) wire.Backend { return r.WithStore(name) }

// Ping probes the coordinator connection.
func (r *Router) Ping() error { return r.dirConn.Ping() }

// Close tears down the coordinator connection and every node transport.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	nodes := make([]*nodeConn, 0, len(r.nodes))
	for _, nc := range r.nodes {
		nodes = append(nodes, nc)
	}
	r.mu.Unlock()
	first := r.dirConn.Close()
	for _, nc := range nodes {
		if err := nc.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// canonicalStore mirrors wire's storeName canonicalisation.
func canonicalStore(name string) string {
	if name == "" {
		return wire.DefaultStore
	}
	return name
}
