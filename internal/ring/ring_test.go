package ring

import (
	"fmt"
	"reflect"
	"testing"
)

func testDir(n, r int) *Directory {
	d := &Directory{Version: 1, Replicas: r}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node%d:70%02d", i, i)
		d.Nodes = append(d.Nodes, Node{ID: id, Addr: id, Alive: true})
	}
	return d
}

// TestPlacementDeterministic: placement is a pure function of membership
// — same directory, same answer, in any process.
func TestPlacementDeterministic(t *testing.T) {
	d := testDir(5, 3)
	a, b := Build(d), Build(d)
	for i := 0; i < 50; i++ {
		ns := fmt.Sprintf("tenant-%d", i)
		pa, pb := a.Placement(ns), b.Placement(ns)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("placement(%s) differs across builds: %v vs %v", ns, pa, pb)
		}
		if len(pa) != 3 {
			t.Fatalf("placement(%s) = %d replicas, want 3", ns, len(pa))
		}
		seen := map[string]bool{}
		for _, n := range pa {
			if seen[n.ID] {
				t.Fatalf("placement(%s) repeats node %s", ns, n.ID)
			}
			seen[n.ID] = true
		}
	}
}

// TestPlacementIgnoresLiveness: a node flap must not move data.
func TestPlacementIgnoresLiveness(t *testing.T) {
	up := testDir(4, 2)
	down := testDir(4, 2)
	down.Nodes[1].Alive = false
	down.Nodes[3].Alive = false
	ra, rb := Build(up), Build(down)
	for i := 0; i < 50; i++ {
		ns := fmt.Sprintf("ns-%d", i)
		ids := func(ns []Node) []string {
			out := make([]string, len(ns))
			for i, n := range ns {
				out[i] = n.ID
			}
			return out
		}
		if a, b := ids(ra.Placement(ns)), ids(rb.Placement(ns)); !reflect.DeepEqual(a, b) {
			t.Fatalf("liveness moved placement(%s): %v vs %v", ns, a, b)
		}
	}
}

// TestPlacementSpread: with virtual nodes, every node serves as primary
// for some namespaces (no starved node).
func TestPlacementSpread(t *testing.T) {
	r := Build(testDir(3, 2))
	primaries := map[string]int{}
	for i := 0; i < 300; i++ {
		p := r.Placement(fmt.Sprintf("store-%d", i))
		primaries[p[0].ID]++
	}
	if len(primaries) != 3 {
		t.Fatalf("only %d of 3 nodes ever primary: %v", len(primaries), primaries)
	}
	for id, n := range primaries {
		if n < 30 {
			t.Errorf("node %s is primary for only %d/300 namespaces (badly skewed ring)", id, n)
		}
	}
}

// TestReplicasClamped: R is clamped to [1, nodes].
func TestReplicasClamped(t *testing.T) {
	if got := Build(testDir(2, 5)).Replicas(); got != 2 {
		t.Fatalf("R=5 over 2 nodes: Replicas() = %d, want 2", got)
	}
	if got := Build(testDir(3, 0)).Replicas(); got != 1 {
		t.Fatalf("R=0: Replicas() = %d, want 1", got)
	}
	if got := len(Build(testDir(4, 2)).Placement("x")); got != 2 {
		t.Fatalf("placement size = %d, want 2", got)
	}
}

// TestDirectoryRoundTrip: the wire blob encoding is lossless.
func TestDirectoryRoundTrip(t *testing.T) {
	d := testDir(3, 2)
	d.Version = 42
	d.Nodes[2].Alive = false
	blob, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDirectory(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("decode = %+v, want %+v", got, d)
	}
}
