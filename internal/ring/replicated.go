package ring

import (
	"fmt"
	"sync"

	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/wire"
)

// ReplicatedStore is one namespace's replicated view: a wire.Backend that
// fans writes out to every in-sync replica and serves reads from a sticky
// preferred replica with instant failover.
//
// Write consistency is CP by construction. The owner's address arithmetic
// (client-side Add addresses, token → address postings) must be identical
// on every replica that accepts writes, so a replica that misses or
// refuses a write is quarantined out of the write set immediately — it
// keeps serving reads of its (stale) prefix, but it takes no further
// writes until anti-entropy repair has restored byte-for-byte row parity
// and the readmission probe observes equal lengths. If NO replica can
// take a write, the write fails rather than diverging the survivors:
// refusing is recoverable, forked address spaces are not.
//
// Failed reads on one replica fall over to the next without surfacing
// through the owner's logical-error bracket: the ReplicatedStore keeps
// its OWN logical record and counts only ops that failed on EVERY
// replica, because a masked per-replica failure is degradation the
// failover already absorbed, not a lost answer.
type ReplicatedStore struct {
	r        *Router
	name     string
	replicas []*nodeConn

	// writeMu serialises write fan-out, quarantine decisions and
	// readmission probing; inSync is only touched under it.
	writeMu sync.Mutex
	inSync  []bool

	prefMu sync.Mutex
	pref   int // sticky preferred read replica

	tokMu    sync.Mutex
	adminTok []byte

	logMu    sync.Mutex
	logical  error
	logicalN uint64
}

var _ wire.Backend = (*ReplicatedStore)(nil)

func newReplicatedStore(r *Router, name string, replicas []*nodeConn) *ReplicatedStore {
	inSync := make([]bool, len(replicas))
	for i := range inSync {
		inSync[i] = true
	}
	return &ReplicatedStore{r: r, name: name, replicas: replicas, inSync: inSync}
}

// StoreName returns the namespace this view addresses.
func (s *ReplicatedStore) StoreName() string { return s.name }

// Placement returns the replica nodes in ring order (primary first).
func (s *ReplicatedStore) Placement() []Node {
	out := make([]Node, len(s.replicas))
	for i, nc := range s.replicas {
		out[i] = nc.node
	}
	return out
}

// InSync reports the current write set (indexes parallel Placement).
func (s *ReplicatedStore) InSync() []bool {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	out := make([]bool, len(s.inSync))
	copy(out, s.inSync)
	return out
}

// backend returns a replica's Backend view with the owner token stamped.
func (s *ReplicatedStore) backend(nc *nodeConn) wire.Backend {
	b := nc.backend(s.name)
	s.tokMu.Lock()
	tok := s.adminTok
	s.tokMu.Unlock()
	if tok != nil {
		b.SetAdminToken(tok)
	}
	return b
}

// noteLogical records an op that failed on every replica.
func (s *ReplicatedStore) noteLogical(err error) {
	if err == nil {
		err = fmt.Errorf("ring: store %q: op failed on every replica", s.name)
	}
	s.logMu.Lock()
	if s.logical == nil {
		s.logical = err
	}
	s.logicalN++
	s.logMu.Unlock()
}

func (s *ReplicatedStore) setPref(i int) {
	s.prefMu.Lock()
	s.pref = i
	s.prefMu.Unlock()
}

// readOrder is the failover probe order: available replicas starting at
// the sticky preference, or every replica forced when all are cooling
// down (a wrong guess there costs a fast error, not a wrong answer).
func (s *ReplicatedStore) readOrder() []int {
	s.prefMu.Lock()
	pref := s.pref
	s.prefMu.Unlock()
	n := len(s.replicas)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if idx := (pref + i) % n; s.replicas[idx].available() {
			order = append(order, idx)
		}
	}
	if len(order) == 0 {
		for i := 0; i < n; i++ {
			order = append(order, (pref+i)%n)
		}
	}
	return order
}

// bracket runs a void read against one replica backend and surfaces the
// failure its signature swallowed, using the transport's logical-error
// counter as the witness.
func bracket(b wire.Backend, f func()) error {
	before := b.LogicalErrCount()
	f()
	if err := b.Err(); err != nil {
		return err
	}
	if b.LogicalErrCount() != before {
		if err := b.LogicalErr(); err != nil {
			return err
		}
		return fmt.Errorf("ring: replica recorded a per-op failure")
	}
	return nil
}

// afterFailure books a failed probe: the node cools down only when its
// transport is actually gone — a logical refusal (unknown relation, bad
// range) is deterministic and must not eject the node from read routing.
func (s *ReplicatedStore) afterFailure(nc *nodeConn) {
	if nc.transportDead() {
		nc.markDown()
	}
}

// readVoid serves a void-signature read with failover; an op that fails
// on every replica lands in the view's own logical record.
func (s *ReplicatedStore) readVoid(f func(wire.Backend)) {
	var lastErr error
	for _, idx := range s.readOrder() {
		nc := s.replicas[idx]
		b := s.backend(nc)
		if err := bracket(b, func() { f(b) }); err != nil {
			lastErr = err
			s.afterFailure(nc)
			continue
		}
		s.setPref(idx)
		return
	}
	s.noteLogical(lastErr)
}

// readErr serves an error-signature read with failover.
func (s *ReplicatedStore) readErr(f func(wire.Backend) error) error {
	var lastErr error
	for _, idx := range s.readOrder() {
		nc := s.replicas[idx]
		if err := f(s.backend(nc)); err != nil {
			lastErr = err
			s.afterFailure(nc)
			continue
		}
		s.setPref(idx)
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("ring: store %q: no replica answered", s.name)
	}
	return lastErr
}

// fanOut runs one write against every in-sync replica (writeMu held).
// Replicas that miss the write are quarantined — but only if at least one
// replica acked; with zero acks the write is refused outright and no
// quarantine sticks, so a total outage (or a client-side mistake every
// node refuses identically) cannot strand the namespace with an empty
// write set.
func (s *ReplicatedStore) fanOut(f func(wire.Backend) error) error {
	acks := 0
	var quarantine []int
	var lastErr error
	for i, nc := range s.replicas {
		if !s.inSync[i] {
			continue
		}
		if !nc.available() {
			quarantine = append(quarantine, i)
			if lastErr == nil {
				lastErr = fmt.Errorf("ring: store %q: replica %s is down", s.name, nc.node.ID)
			}
			continue
		}
		if err := f(s.backend(nc)); err != nil {
			quarantine = append(quarantine, i)
			lastErr = err
			s.afterFailure(nc)
			continue
		}
		acks++
	}
	if acks == 0 {
		if lastErr == nil {
			lastErr = fmt.Errorf("ring: store %q: no in-sync replica", s.name)
		}
		return lastErr
	}
	for _, i := range quarantine {
		s.inSync[i] = false
	}
	return nil
}

// readmit probes quarantined replicas for row parity with the in-sync
// set and restores them to the write set when anti-entropy repair has
// caught them up. Called after a successful flush (writeMu held) so the
// in-sync length it compares against is stable.
//
// Before the parity probe the replica's client view is told to re-learn
// the server length (ResyncLen): repair appended rows server-side that
// this view never uploaded, so its cached address base is stale and
// reusing it would hand out colliding addresses. A view still holding
// retained uploads refuses the resync and simply stays quarantined — its
// transport's eventual replacement clears that state.
//
// When the parity probe finds a replica still short, readmit asks the
// coordinator for one targeted repair round (opRingRepair) and re-probes,
// instead of waiting for the background sweep: this view's writes are
// frozen under writeMu while the repair runs, so on a single-writer
// namespace the round deterministically closes the gap and the replica
// rejoins within the same write call. At most one coordinator round is
// requested per readmit, and a failed request (no ring, coordinator
// unreachable) just leaves the replica to the sweep as before.
func (s *ReplicatedStore) readmit() {
	ref := -1
	for i := range s.replicas {
		if s.inSync[i] && s.replicas[i].available() {
			ref = i
			break
		}
	}
	if ref == -1 {
		return
	}
	var refInfo wire.StoreInfo
	refOK := false
	repairAsked := false
	for i, nc := range s.replicas {
		if s.inSync[i] || !nc.available() {
			continue
		}
		b := s.backend(nc)
		if !refOK {
			info, err := s.probeInfo(s.backend(s.replicas[ref]))
			if err != nil {
				return
			}
			refInfo = info
			refOK = true
		}
		for attempt := 0; ; attempt++ {
			if rl, ok := b.(interface{ ResyncLen() error }); ok {
				if err := rl.ResyncLen(); err != nil {
					break
				}
			}
			info, err := s.probeInfo(b)
			if err != nil {
				s.afterFailure(nc)
				break
			}
			// Parity must hold for BOTH partitions: an encrypted-length match
			// alone would readmit a replica whose clear-text tuples still lag
			// the wholesale plain repair, and the next insert would land at a
			// different position there than on its peers.
			if info.EncRows == refInfo.EncRows && info.PlainTuples == refInfo.PlainTuples {
				s.inSync[i] = true
				break
			}
			if attempt > 0 || repairAsked {
				break
			}
			repairAsked = true
			if s.r.RequestRepair(s.name) != nil {
				break
			}
			// Other owners of the namespace may have written while the
			// repair ran; refresh the reference before the re-probe.
			if info, err := s.probeInfo(s.backend(s.replicas[ref])); err == nil {
				refInfo = info
			}
		}
	}
}

// probeInfo reads one replica's server-side partition counts for the
// readmission parity check, via the transport's Info probe when it has
// one (the reconnecting wire client does) and the encrypted length alone
// otherwise.
func (s *ReplicatedStore) probeInfo(b wire.Backend) (wire.StoreInfo, error) {
	if ip, ok := b.(interface{ Info() (wire.StoreInfo, error) }); ok {
		return ip.Info()
	}
	var info wire.StoreInfo
	err := bracket(b, func() { info.EncRows = b.Len() })
	return info, err
}

// --- lifecycle and errors ------------------------------------------------

// Ping succeeds when any replica answers.
func (s *ReplicatedStore) Ping() error {
	var lastErr error
	for _, idx := range s.readOrder() {
		nc := s.replicas[idx]
		if err := nc.transport().Ping(); err != nil {
			lastErr = err
			s.afterFailure(nc)
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("ring: store %q: no replica answered ping", s.name)
	}
	return lastErr
}

// Err is the view's sticky transport health: nil while any replica's
// transport is live (or not yet dialed — it may well succeed). Only when
// every replica has permanently failed is the view itself failed.
func (s *ReplicatedStore) Err() error {
	var firstErr error
	for _, nc := range s.replicas {
		nc.mu.Lock()
		tr := nc.tr
		nc.mu.Unlock()
		if tr == nil {
			return nil
		}
		err := tr.Err()
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// LogicalErr returns the view's own per-op error record: ops that failed
// on EVERY replica. Per-replica failures masked by failover do not count.
func (s *ReplicatedStore) LogicalErr() error {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.logical
}

// LogicalErrCount counts ops that failed on every replica.
func (s *ReplicatedStore) LogicalErrCount() uint64 {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.logicalN
}

// Close closes the SHARED router: every namespace view dies with it.
func (s *ReplicatedStore) Close() error { return s.r.Close() }

// SetAdminToken attaches the namespace's owner token; it is stamped onto
// every replica view at acquisition so claims and write admission behave
// identically on each replica.
func (s *ReplicatedStore) SetAdminToken(tok []byte) {
	s.tokMu.Lock()
	s.adminTok = tok
	s.tokMu.Unlock()
}

// --- writes (fan-out) ----------------------------------------------------

// Load ships the clear-text partition to every in-sync replica.
func (s *ReplicatedStore) Load(rel *relation.Relation, attr string) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.fanOut(func(b wire.Backend) error { return b.Load(rel, attr) })
}

// Insert applies a clear-text insert on every in-sync replica, then —
// like Flush — uses the settled moment to probe quarantined replicas for
// readmission, so a plain-heavy workload does not leave a repaired
// replica quarantined until the next encrypted flush happens by.
func (s *ReplicatedStore) Insert(t relation.Tuple) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.fanOut(func(b wire.Backend) error { return b.Insert(t) }); err != nil {
		return err
	}
	s.readmit()
	return nil
}

// Add buffers one encrypted row on every in-sync replica and returns its
// address. The replicas' client-side address arithmetic must agree; a
// replica handing out a different address has diverged and is quarantined
// on the spot.
func (s *ReplicatedStore) Add(tupleCT, attrCT, token []byte) int {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	addr := -1
	var quarantine []int
	for i, nc := range s.replicas {
		if !s.inSync[i] {
			continue
		}
		if !nc.available() {
			quarantine = append(quarantine, i)
			continue
		}
		got := s.backend(nc).Add(tupleCT, attrCT, token)
		if got < 0 {
			quarantine = append(quarantine, i)
			s.afterFailure(nc)
			continue
		}
		if addr == -1 {
			addr = got
			continue
		}
		if got != addr {
			quarantine = append(quarantine, i)
		}
	}
	if addr == -1 {
		s.noteLogical(fmt.Errorf("ring: store %q: add failed on every in-sync replica", s.name))
		return -1
	}
	for _, i := range quarantine {
		s.inSync[i] = false
	}
	return addr
}

// Flush uploads the pending rows on every in-sync replica, then uses the
// settled moment to probe quarantined replicas for readmission.
func (s *ReplicatedStore) Flush() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.fanOut(func(b wire.Backend) error { return b.Flush() }); err != nil {
		return err
	}
	s.readmit()
	return nil
}

// --- reads (failover) ----------------------------------------------------

// Search serves from the preferred replica, failing over on error.
func (s *ReplicatedStore) Search(values []relation.Value) []relation.Tuple {
	var out []relation.Tuple
	s.readVoid(func(b wire.Backend) { out = b.Search(values) })
	return out
}

// SearchRange serves from the preferred replica, failing over on error.
func (s *ReplicatedStore) SearchRange(lo, hi relation.Value) []relation.Tuple {
	var out []relation.Tuple
	s.readVoid(func(b wire.Backend) { out = b.SearchRange(lo, hi) })
	return out
}

// Len serves from the preferred replica, failing over on error.
func (s *ReplicatedStore) Len() int {
	var out int
	s.readVoid(func(b wire.Backend) { out = b.Len() })
	return out
}

// AttrColumn serves from the preferred replica, failing over on error.
func (s *ReplicatedStore) AttrColumn() []storage.EncRow {
	var out []storage.EncRow
	s.readVoid(func(b wire.Backend) { out = b.AttrColumn() })
	return out
}

// Fetch serves from the preferred replica, failing over on error.
func (s *ReplicatedStore) Fetch(addrs []int) ([]storage.EncRow, error) {
	var out []storage.EncRow
	err := s.readErr(func(b wire.Backend) error {
		rows, err := b.Fetch(addrs)
		if err != nil {
			return err
		}
		out = rows
		return nil
	})
	return out, err
}

// FetchBatch serves from the preferred replica, failing over on error.
func (s *ReplicatedStore) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	var out [][]storage.EncRow
	err := s.readErr(func(b wire.Backend) error {
		rows, err := b.FetchBatch(addrBatches)
		if err != nil {
			return err
		}
		out = rows
		return nil
	})
	return out, err
}

// LookupToken serves from the preferred replica, failing over on error.
func (s *ReplicatedStore) LookupToken(tok []byte) []int {
	var out []int
	s.readVoid(func(b wire.Backend) { out = b.LookupToken(tok) })
	return out
}

// Rows serves from the preferred replica, failing over on error.
func (s *ReplicatedStore) Rows() []storage.EncRow {
	var out []storage.EncRow
	s.readVoid(func(b wire.Backend) { out = b.Rows() })
	return out
}

// EncVersion serves from the preferred replica, failing over on error.
// Version epochs are per store INSTANCE, so a failover necessarily
// changes the observed epoch — exactly the signal the owner-side cache
// needs to drop state learned from the previous replica.
func (s *ReplicatedStore) EncVersion() (storage.EncVersion, error) {
	var out storage.EncVersion
	err := s.readErr(func(b wire.Backend) error {
		v, err := b.EncVersion()
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	return out, err
}

// AttrColumnSince serves from the preferred replica, failing over on
// error. Read stickiness keeps the conditional-fetch protocol effective:
// the epoch only changes when a failover actually happens.
func (s *ReplicatedStore) AttrColumnSince(v storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	var rows []storage.EncRow
	var cur storage.EncVersion
	var delta bool
	err := s.readErr(func(b wire.Backend) error {
		r, c, d, err := b.AttrColumnSince(v, have)
		if err != nil {
			return err
		}
		rows, cur, delta = r, c, d
		return nil
	})
	if err != nil {
		return nil, storage.EncVersion{}, false, err
	}
	return rows, cur, delta, nil
}

// RowsSince serves from the preferred replica, failing over on error.
func (s *ReplicatedStore) RowsSince(v storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	var rows []storage.EncRow
	var cur storage.EncVersion
	var delta bool
	err := s.readErr(func(b wire.Backend) error {
		r, c, d, err := b.RowsSince(v, have)
		if err != nil {
			return err
		}
		rows, cur, delta = r, c, d
		return nil
	})
	if err != nil {
		return nil, storage.EncVersion{}, false, err
	}
	return rows, cur, delta, nil
}
