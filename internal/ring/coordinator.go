package ring

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/storage"
	"repro/internal/wire"
)

// Config configures a qbring coordinator.
type Config struct {
	// Nodes are the qbcloud listen addresses forming the ring. The address
	// doubles as the node's stable ring identity, so it must not change
	// across node restarts.
	Nodes []string
	// Replicas is the replication factor R (default 2, clamped to the node
	// count at placement time).
	Replicas int
	// RingToken authorises intra-ring transfer (snapshot restore, repair
	// append) on the nodes. Leave nil only when the nodes run without one.
	RingToken []byte
	// HealthEvery is the liveness probe interval (default 500ms).
	HealthEvery time.Duration
	// RepairEvery is the anti-entropy sweep interval (default 1s).
	RepairEvery time.Duration
	// Logf, when set, receives one line per health flip and repair action.
	Logf func(format string, args ...any)
}

func (c Config) healthEvery() time.Duration {
	if c.HealthEvery <= 0 {
		return 500 * time.Millisecond
	}
	return c.HealthEvery
}

func (c Config) repairEvery() time.Duration {
	if c.RepairEvery <= 0 {
		return time.Second
	}
	return c.RepairEvery
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// RepairStats counts what the anti-entropy sweeps did.
type RepairStats struct {
	// Tails is the number of tail-delta repairs applied.
	Tails uint64
	// Snapshots is the number of full snapshot transfers applied.
	Snapshots uint64
	// Rows is the total encrypted rows shipped by tail repairs.
	Rows uint64
}

// Coordinator is the qbring control plane: it owns the placement
// directory (membership + replication factor + liveness), probes node
// health, and runs the anti-entropy repair loop that catches lagging or
// rejoining replicas up to their peers.
//
// The coordinator is deliberately OFF the data path — owners talk to the
// replicas directly — so its own availability only gates directory
// refresh and repair, never queries.
type Coordinator struct {
	cfg Config

	mu   sync.Mutex
	dir  *Directory
	blob []byte
	ring *Ring

	connMu sync.Mutex
	conns  map[string]*wire.Client

	statMu sync.Mutex
	stats  RepairStats

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// New builds a coordinator over the configured membership. The directory
// starts at version 1 with every node presumed alive; the first health
// sweep corrects that within one probe interval.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("ring: coordinator needs at least one node")
	}
	seen := make(map[string]struct{}, len(cfg.Nodes))
	nodes := make([]Node, 0, len(cfg.Nodes))
	for _, addr := range cfg.Nodes {
		if addr == "" {
			return nil, fmt.Errorf("ring: empty node address")
		}
		if _, dup := seen[addr]; dup {
			return nil, fmt.Errorf("ring: duplicate node address %q", addr)
		}
		seen[addr] = struct{}{}
		nodes = append(nodes, Node{ID: addr, Addr: addr, Alive: true})
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	dir := &Directory{Version: 1, Replicas: cfg.Replicas, Nodes: nodes}
	blob, err := dir.Encode()
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:     cfg,
		dir:     dir,
		blob:    blob,
		ring:    Build(dir),
		conns:   make(map[string]*wire.Client, len(nodes)),
		stopped: make(chan struct{}),
	}, nil
}

// Directory returns the current directory.
func (co *Coordinator) Directory() *Directory {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.dir
}

// Stats returns a snapshot of the repair counters.
func (co *Coordinator) Stats() RepairStats {
	co.statMu.Lock()
	defer co.statMu.Unlock()
	return co.stats
}

// DirectoryBlob is the wire.Cloud ring-directory provider: the encoded
// directory, its version, and whether it changed relative to the
// caller's known version (the conditional-fetch contract).
func (co *Coordinator) DirectoryBlob(known uint64) ([]byte, uint64, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if known == co.dir.Version {
		return nil, co.dir.Version, false
	}
	return co.blob, co.dir.Version, true
}

// Run starts the health and repair loops. Stop shuts them down.
func (co *Coordinator) Run() {
	co.wg.Add(2)
	go func() {
		defer co.wg.Done()
		t := time.NewTicker(co.cfg.healthEvery())
		defer t.Stop()
		for {
			select {
			case <-co.stopped:
				return
			case <-t.C:
				co.HealthCheckOnce()
			}
		}
	}()
	go func() {
		defer co.wg.Done()
		t := time.NewTicker(co.cfg.repairEvery())
		defer t.Stop()
		for {
			select {
			case <-co.stopped:
				return
			case <-t.C:
				co.RepairOnce()
			}
		}
	}()
}

// Stop terminates the loops and closes the node connections.
func (co *Coordinator) Stop() {
	co.stopOnce.Do(func() { close(co.stopped) })
	co.wg.Wait()
	co.connMu.Lock()
	for addr, c := range co.conns {
		c.Close()
		delete(co.conns, addr)
	}
	co.connMu.Unlock()
}

// conn returns a cached control connection to a node, redialing one whose
// transport has gone sticky-bad.
func (co *Coordinator) conn(addr string) (*wire.Client, error) {
	co.connMu.Lock()
	defer co.connMu.Unlock()
	if c, ok := co.conns[addr]; ok {
		if c.Err() == nil {
			return c, nil
		}
		c.Close()
		delete(co.conns, addr)
	}
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	co.conns[addr] = c
	return c, nil
}

// HealthCheckOnce probes every node and publishes a new directory version
// when liveness changed.
func (co *Coordinator) HealthCheckOnce() {
	co.mu.Lock()
	nodes := make([]Node, len(co.dir.Nodes))
	copy(nodes, co.dir.Nodes)
	co.mu.Unlock()

	changed := false
	for i := range nodes {
		alive := false
		if c, err := co.conn(nodes[i].Addr); err == nil {
			alive = c.Ping() == nil
		}
		if alive != nodes[i].Alive {
			co.cfg.logf("qbring: node %s %s", nodes[i].ID, liveness(alive))
			nodes[i].Alive = alive
			changed = true
		}
	}
	if !changed {
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	dir := &Directory{Version: co.dir.Version + 1, Replicas: co.dir.Replicas, Nodes: nodes}
	blob, err := dir.Encode()
	if err != nil {
		co.cfg.logf("qbring: directory encode: %v", err)
		return
	}
	co.dir = dir
	co.blob = blob
	co.ring = Build(dir)
}

func liveness(alive bool) string {
	if alive {
		return "up"
	}
	return "down"
}

// replicaState is one replica's observation during a repair sweep.
type replicaState struct {
	node Node
	c    *wire.Client
	info wire.StoreInfo
}

// RepairOnce runs one anti-entropy sweep: for every namespace hosted
// anywhere in the ring, compare its replicas and catch laggers up —
// a tail-delta append when only encrypted rows lag, a full snapshot
// transfer when the replica is fresh, restarted, or structurally behind
// (clear-text partition or ownership claim mismatch).
//
// Repair is safe against concurrent owner writes without any locking
// across nodes: the tail is installed with a compare-and-swap on the row
// count (AppendIfLen), so a write that lands between probe and append
// fails the CAS cleanly and the sweep simply retries next round. The CP
// write path guarantees a lagging replica's rows are a strict prefix of
// its peers' (a replica that misses one write is quarantined from the
// write set until repaired), which is what makes count-based comparison
// sound in the first place.
func (co *Coordinator) RepairOnce() RepairStats {
	var done RepairStats
	co.mu.Lock()
	dir := co.dir
	ring := co.ring
	co.mu.Unlock()

	// Namespace discovery: the union of hosted namespaces across alive
	// nodes. A namespace a dead node hosts exclusively has no live source
	// to repair from anyway.
	names := make(map[string]struct{})
	for _, n := range dir.Nodes {
		if !n.Alive {
			continue
		}
		c, err := co.conn(n.Addr)
		if err != nil {
			continue
		}
		hosted, err := c.AdminList()
		if err != nil {
			continue
		}
		for _, ns := range hosted {
			names[ns] = struct{}{}
		}
	}
	ordered := make([]string, 0, len(names))
	for ns := range names {
		ordered = append(ordered, ns)
	}
	sort.Strings(ordered)

	for _, ns := range ordered {
		st := co.repairNamespace(ns, ring, false)
		done.Tails += st.Tails
		done.Snapshots += st.Snapshots
		done.Rows += st.Rows
	}
	if done.Tails+done.Snapshots > 0 {
		co.statMu.Lock()
		co.stats.Tails += done.Tails
		co.stats.Snapshots += done.Snapshots
		co.stats.Rows += done.Rows
		co.statMu.Unlock()
	}
	return done
}

// RepairNamespace runs one immediate, targeted anti-entropy round for a
// single namespace — the handler behind opRingRepair. It bypasses the
// sweep's divergence grace window: the caller is a writer whose
// readmission probe already observed a quarantined replica lagging, so
// the divergence is established fact, and making the writer wait out the
// sweep interval would leave reads pinned to the stale replica for the
// duration. The round is still CAS-safe against concurrent owner writes,
// exactly like the sweep.
func (co *Coordinator) RepairNamespace(ns string) RepairStats {
	co.mu.Lock()
	ring := co.ring
	co.mu.Unlock()
	st := co.repairNamespace(ns, ring, true)
	if st.Tails+st.Snapshots > 0 {
		co.statMu.Lock()
		co.stats.Tails += st.Tails
		co.stats.Snapshots += st.Snapshots
		co.stats.Rows += st.Rows
		co.statMu.Unlock()
	}
	return st
}

// divergenceConfirmDelay is how long the sweep waits before re-probing a
// divergent replica to tell a genuinely stuck lagger from the
// sub-millisecond gap inside a healthy fan-out write (the probe can land
// between replica A acking and replica B acking the same insert).
const divergenceConfirmDelay = 50 * time.Millisecond

// confirmDivergence re-probes a divergent replica after a short delay and
// reports whether it is genuinely stuck: byte-identical replica state at
// both probes. Any movement — a row landing, the plain partition growing,
// an epoch change — means the replica is live and mid-write; "repairing"
// it then would steal the in-flight write's length CAS and quarantine a
// healthy replica, so the sweep skips it and re-evaluates next round. A
// replica that really missed a write is excluded from the write set, so
// its deficit is static and confirms here on the first sweep that sees it.
func (co *Coordinator) confirmDivergence(ns string, st replicaState) bool {
	select {
	case <-co.stopped:
		return false
	case <-time.After(divergenceConfirmDelay):
	}
	info, err := st.c.StoreInfo(ns)
	if err != nil {
		return false
	}
	return info == st.info
}

// repairNamespace compares one namespace's replicas and repairs laggers.
// With force unset a divergent replica is only acted on once the
// divergence is confirmed static (see confirmDivergence); force bypasses
// the confirmation for targeted repairs, whose caller has already
// observed the divergence persist.
func (co *Coordinator) repairNamespace(ns string, ring *Ring, force bool) RepairStats {
	var done RepairStats
	placement := ring.Placement(ns)
	states := make([]replicaState, 0, len(placement))
	for _, n := range placement {
		c, err := co.conn(n.Addr)
		if err != nil {
			continue
		}
		info, err := c.StoreInfo(ns)
		if err != nil {
			continue
		}
		states = append(states, replicaState{node: n, c: c, info: info})
	}
	if len(states) < 2 {
		return done
	}

	// The repair source is the most advanced reachable replica: most
	// encrypted rows, then most clear-text tuples on a tie. Under the CP
	// write policy every replica's data is a prefix of the leader's.
	target := -1
	for i, st := range states {
		if !st.info.Exists {
			continue
		}
		if target == -1 {
			target = i
			continue
		}
		t := states[target].info
		if st.info.EncRows > t.EncRows ||
			(st.info.EncRows == t.EncRows && st.info.PlainTuples > t.PlainTuples) {
			target = i
		}
	}
	if target == -1 {
		return done
	}
	src := states[target]

	for i, st := range states {
		if i == target {
			continue
		}
		structural := !st.info.Exists ||
			st.info.PlainTuples != src.info.PlainTuples ||
			st.info.Claimed != src.info.Claimed
		if !structural && st.info.EncRows >= src.info.EncRows {
			continue
		}
		// A healthy fan-out write is briefly visible as both a structural
		// gap (PlainTuples off by one between the first and last replica
		// acking) and an encrypted-row lag; only a confirmed-static
		// divergence is acted on.
		if !force && !co.confirmDivergence(ns, st) {
			continue
		}
		switch {
		case structural:
			blob, err := src.c.StoreSnapshot(ns)
			if err != nil {
				co.cfg.logf("qbring: repair %s: snapshot from %s: %v", ns, src.node.ID, err)
				continue
			}
			n, err := st.c.StoreRestore(ns, blob, co.cfg.RingToken)
			if err != nil {
				co.cfg.logf("qbring: repair %s: restore on %s: %v", ns, st.node.ID, err)
				continue
			}
			co.cfg.logf("qbring: repair %s: snapshot %s -> %s (%d rows)", ns, src.node.ID, st.node.ID, n)
			done.Snapshots++
		default: // st.info.EncRows < src.info.EncRows
			have := st.info.EncRows
			rows, _, delta, err := src.c.WithStore(ns).RowsSince(
				storage.EncVersion{Epoch: src.info.VerEpoch, N: src.info.VerN}, have)
			if err != nil || !delta {
				// The source changed identity between probe and pull
				// (restart); re-probe next sweep.
				continue
			}
			if len(rows) == 0 {
				continue
			}
			if _, err := st.c.RepairAppend(ns, rows, have, co.cfg.RingToken); err != nil {
				// Usually the CAS losing to a concurrent owner write;
				// next sweep re-probes.
				co.cfg.logf("qbring: repair %s: append on %s: %v", ns, st.node.ID, err)
				continue
			}
			co.cfg.logf("qbring: repair %s: tail %s -> %s (+%d rows)", ns, src.node.ID, st.node.ID, len(rows))
			done.Tails++
			done.Rows += uint64(len(rows))
		}
	}
	return done
}
