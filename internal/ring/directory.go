package ring

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/wire"
)

// Node is one qbcloud in the ring.
type Node struct {
	// ID is the node's stable identity on the hash ring; the coordinator
	// uses the listen address, which must therefore be stable across
	// restarts (placement is a pure function of the IDs).
	ID string
	// Addr is the node's wire listen address.
	Addr string
	// Alive is the coordinator's last health observation. It never moves
	// placement; clients use it to order their own failover probing and
	// operators read it from qbadmin ring.
	Alive bool
}

// Directory is the placement map a qbring coordinator serves: the
// configured membership, the replication factor, and a version counter
// bumped on every observable change so clients cache it and revalidate
// with a tiny conditional fetch instead of re-pulling per op.
//
// The wire layer carries it as an opaque gob blob (wire must not depend
// on this package), so the directory schema can evolve without touching
// the protocol.
type Directory struct {
	Version  uint64
	Replicas int
	Nodes    []Node
}

// Encode serialises the directory into its wire blob form.
func (d *Directory) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return nil, fmt.Errorf("ring: directory encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeDirectory parses a directory blob.
func DecodeDirectory(blob []byte) (*Directory, error) {
	d := new(Directory)
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(d); err != nil {
		return nil, fmt.Errorf("ring: directory decode: %w", err)
	}
	return d, nil
}

// FetchDirectory pulls the current directory from a coordinator
// connection unconditionally.
func FetchDirectory(c *wire.Client) (*Directory, error) {
	blob, version, changed, err := c.RingDirectory(0)
	if err != nil {
		return nil, err
	}
	if !changed || len(blob) == 0 {
		return nil, fmt.Errorf("ring: coordinator answered not-modified to an unconditional directory fetch (version %d)", version)
	}
	return DecodeDirectory(blob)
}
