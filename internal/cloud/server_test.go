package cloud

import (
	"testing"

	"repro/internal/relation"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	s := relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
		relation.Column{Name: "P", Kind: relation.KindString},
	)
	r := relation.New(s)
	for i := 0; i < 20; i++ {
		r.MustInsert(relation.Int(int64(i%5)), relation.Str("x"))
	}
	srv, err := NewServer(r, "K")
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestNewServerBadAttr(t *testing.T) {
	r := relation.New(relation.MustSchema("T", relation.Column{Name: "K", Kind: relation.KindInt}))
	if _, err := NewServer(r, "missing"); err == nil {
		t.Fatal("missing attribute accepted")
	}
}

func TestSearchPlain(t *testing.T) {
	srv := testServer(t)
	got := srv.SearchPlain([]relation.Value{relation.Int(2), relation.Int(4)})
	if len(got) != 8 {
		t.Fatalf("returned %d tuples, want 8", len(got))
	}
}

func TestSearchPlainRange(t *testing.T) {
	srv := testServer(t)
	got := srv.SearchPlainRange(relation.Int(1), relation.Int(2))
	if len(got) != 8 {
		t.Fatalf("range returned %d tuples, want 8", len(got))
	}
}

func TestInsertPlain(t *testing.T) {
	srv := testServer(t)
	err := srv.InsertPlain(relation.Tuple{ID: 100, Values: []relation.Value{relation.Int(99), relation.Str("y")}})
	if err != nil {
		t.Fatal(err)
	}
	got := srv.SearchPlain([]relation.Value{relation.Int(99)})
	if len(got) != 1 || got[0].ID != 100 {
		t.Fatalf("insert not found: %v", got)
	}
}

func TestRecordAssignsQueryIDs(t *testing.T) {
	srv := testServer(t)
	srv.Record(View{PlainValues: []relation.Value{relation.Int(1)}})
	srv.Record(View{EncPredicates: 2})
	views := srv.Views()
	if len(views) != 2 {
		t.Fatalf("views = %d", len(views))
	}
	if views[0].QueryID != 0 || views[1].QueryID != 1 {
		t.Errorf("query ids = %d, %d", views[0].QueryID, views[1].QueryID)
	}
	srv.ResetViews()
	if len(srv.Views()) != 0 {
		t.Error("reset left views")
	}
	srv.Record(View{})
	if srv.Views()[0].QueryID != 0 {
		t.Error("query ids not reset")
	}
}

func TestPlainExposesRelation(t *testing.T) {
	srv := testServer(t)
	if srv.Plain().Len() != 20 {
		t.Errorf("plain store len = %d", srv.Plain().Len())
	}
	if srv.Plain().Attr() != "K" {
		t.Errorf("attr = %q", srv.Plain().Attr())
	}
}
