// Package cloud models the untrusted, honest-but-curious public cloud of
// the partitioned computation model (§II): it stores the plaintext
// non-sensitive relation and (via the technique's encrypted store) the
// encrypted sensitive relation, answers bin queries faithfully, and records
// the adversarial view AV = Inc ∪ Opc of every query for the attack suite.
//
// The view log is the ground truth the batch engine's equivalence property
// is stated against: however a batch executes — shared scans, worker
// pools, batched round trips — the recorded views must equal those of a
// sequential query loop. PlainBackend abstracts the clear-text store so it
// can live in process or behind the wire protocol.
package cloud

import (
	"sync"

	"repro/internal/relation"
	"repro/internal/storage"
)

// View is the adversarial view of one query execution: everything the
// honest-but-curious cloud observes. Plaintext inputs and outputs are fully
// visible; the encrypted side exposes only predicate counts and returned
// addresses (access pattern).
type View struct {
	// QueryID orders the views.
	QueryID int
	// PlainValues are the clear-text predicates Wns received for Rns.
	PlainValues []relation.Value
	// EncPredicates is the number of encrypted predicates received for Rs;
	// their contents are indistinguishable ciphertexts.
	EncPredicates int
	// PlainResults are the non-sensitive tuples returned (fully visible).
	PlainResults []relation.Tuple
	// EncResultAddrs are the cloud addresses of the returned encrypted
	// tuples.
	EncResultAddrs []int
}

// PlainBackend abstracts the cloud-side clear-text store so the owner can
// talk to the in-process store or to a remote cloud over the wire
// protocol.
type PlainBackend interface {
	// Load uploads the non-sensitive relation and indexes it on attr.
	Load(rns *relation.Relation, attr string) error
	// Search executes q(Wns)(Rns).
	Search(values []relation.Value) []relation.Tuple
	// SearchRange executes a clear-text range selection.
	SearchRange(lo, hi relation.Value) []relation.Tuple
	// Insert appends one non-sensitive tuple.
	Insert(t relation.Tuple) error
}

// localPlain adapts storage.PlainStore to PlainBackend.
type localPlain struct {
	ps *storage.PlainStore
}

func (l *localPlain) Load(rns *relation.Relation, attr string) error {
	ps, err := storage.NewPlainStore(rns, attr)
	if err != nil {
		return err
	}
	l.ps = ps
	return nil
}

func (l *localPlain) Search(values []relation.Value) []relation.Tuple { return l.ps.Search(values) }
func (l *localPlain) SearchRange(lo, hi relation.Value) []relation.Tuple {
	return l.ps.SearchRange(lo, hi)
}
func (l *localPlain) Insert(t relation.Tuple) error { return l.ps.Insert(t) }

// Server is one public cloud. It is safe for concurrent use: searches run
// in parallel (the underlying stores are internally synchronised), and the
// adversarial-view log is guarded by its own mutex so Record assigns
// strictly increasing QueryIDs in append order — Views always observes a
// consistent, ordered prefix of the log.
type Server struct {
	plain PlainBackend
	local *localPlain // non-nil when the backend is in-process

	mu    sync.RWMutex // guards views and next
	views []View
	next  int
}

// NewServer stores the non-sensitive relation rns in clear-text, in
// process, indexed on the searchable attribute.
func NewServer(rns *relation.Relation, attr string) (*Server, error) {
	l := &localPlain{}
	if err := l.Load(rns, attr); err != nil {
		return nil, err
	}
	return &Server{plain: l, local: l}, nil
}

// NewServerOn loads the non-sensitive relation into an arbitrary backend
// (e.g. a remote cloud reached over the wire protocol).
func NewServerOn(backend PlainBackend, rns *relation.Relation, attr string) (*Server, error) {
	if err := backend.Load(rns, attr); err != nil {
		return nil, err
	}
	return &Server{plain: backend}, nil
}

// Attach wraps a backend that already holds the non-sensitive partition
// (e.g. a restored or long-running remote cloud) without re-uploading.
func Attach(backend PlainBackend) *Server {
	if l, ok := backend.(*localPlain); ok {
		return &Server{plain: backend, local: l}
	}
	return &Server{plain: backend}
}

// Plain exposes the in-process plaintext store, which the local adversary
// may read in full. It returns nil when the backend is remote.
func (s *Server) Plain() *storage.PlainStore {
	if s.local == nil {
		return nil
	}
	return s.local.ps
}

// Backend exposes the clear-text backend.
func (s *Server) Backend() PlainBackend { return s.plain }

// SearchPlain executes q(Wns)(Rns) and returns the matching tuples.
func (s *Server) SearchPlain(values []relation.Value) []relation.Tuple {
	return s.plain.Search(values)
}

// SearchPlainRange executes a clear-text range selection.
func (s *Server) SearchPlainRange(lo, hi relation.Value) []relation.Tuple {
	return s.plain.SearchRange(lo, hi)
}

// InsertPlain appends a non-sensitive tuple.
func (s *Server) InsertPlain(t relation.Tuple) error { return s.plain.Insert(t) }

// Record appends an adversarial view, assigning the next QueryID
// atomically with the append so the log order and the ID order agree.
func (s *Server) Record(v View) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v.QueryID = s.next
	s.next++
	s.views = append(s.views, v)
}

// Views returns a snapshot of the recorded adversarial views in query
// order.
func (s *Server) Views() []View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]View(nil), s.views...)
}

// ViewCount returns the number of recorded views without copying the log.
func (s *Server) ViewCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.views)
}

// ResetViews clears the view log (between attack experiments).
func (s *Server) ResetViews() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.views = nil
	s.next = 0
}
