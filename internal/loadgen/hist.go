package loadgen

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-size log-linear latency histogram: below
// 2^subBits ns every bucket is 1ns wide; above that, each power-of-two
// range is split into 2^subBits linear sub-buckets, bounding the relative
// quantisation error of any reported percentile by 2^-subBits (~1.6%).
// The layout is fixed at compile time — no allocation on the record path,
// and merging two histograms is element-wise addition — and every counter
// is updated atomically, so any number of load goroutines Record into one
// Histogram concurrently while a reporter reads percentiles.
type Histogram struct {
	counts   [numBuckets]atomic.Int64
	total    atomic.Int64
	sum      atomic.Int64 // ns, for Mean
	overflow atomic.Int64 // samples beyond the last bucket (> ~4.6e18 ns)
}

const (
	// subBits fixes the linear resolution: 64 sub-buckets per octave.
	subBits  = 6
	subCount = 1 << subBits
	// Octaves above the linear region: values with floor(log2(v)) in
	// [subBits, 62], one bucket row of subCount each, plus the linear row.
	numBuckets = (62 - subBits + 2) * subCount
)

// bucketIndex maps a non-negative nanosecond count to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	e := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2(v)), >= subBits
	sub := int(v>>(uint(e-subBits))) - subCount
	idx := (e-subBits+1)*subCount + sub
	if idx >= numBuckets {
		return numBuckets // overflow sentinel
	}
	return idx
}

// bucketUpper returns the largest value mapping to bucket idx — the value
// percentiles report, so quantisation only ever rounds latency up.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	b := idx/subCount - 1 // octave row above the linear region
	sub := int64(idx % subCount)
	shift := uint(b)
	return (subCount+sub+1)<<shift - 1
}

// Record adds one latency sample. Negative samples (a clock stepping
// backwards) clamp to zero rather than corrupting a bucket index.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if idx := bucketIndex(v); idx < numBuckets {
		h.counts[idx].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.total.Add(1)
	h.sum.Add(v)
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean reports the arithmetic mean of all samples (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Percentile reports the latency at quantile p in [0,100]: the upper
// bound of the bucket holding the ceil(p/100*count)-th smallest sample.
// Empty histograms report 0. Concurrent Records make the result a
// snapshot, not an exact cut.
func (h *Histogram) Percentile(p float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	rank := int64(p/100*float64(n) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			seen += c
			if seen >= rank {
				return time.Duration(bucketUpper(i))
			}
		}
	}
	// rank falls into the overflow region: report the largest
	// representable bound rather than undercounting.
	return time.Duration(bucketUpper(numBuckets - 1))
}

// Max reports the upper bound of the highest non-empty bucket.
func (h *Histogram) Max() time.Duration {
	if h.overflow.Load() > 0 {
		return time.Duration(bucketUpper(numBuckets - 1))
	}
	for i := numBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			return time.Duration(bucketUpper(i))
		}
	}
	return 0
}

// Merge adds other's samples into h (element-wise; other should be
// quiescent).
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.counts {
		if c := other.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	h.sum.Add(other.sum.Load())
	h.overflow.Add(other.overflow.Load())
}

// String summarises the distribution for human-readable reports.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}
