package loadgen

import (
	"testing"
	"time"
)

// fakeClock is a hand-cranked wire.Clock: After records the requested
// wait, advances virtual time by it, and fires immediately, so a pacer's
// whole schedule runs in microseconds of wall time and every sleep it
// asked for is asserted exactly.
type fakeClock struct {
	now   time.Time
	waits []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.waits = append(c.waits, d)
	c.now = c.now.Add(d)
	ch := make(chan time.Time, 1)
	ch <- c.now
	return ch
}

// TestPacerSchedule asserts the open-loop schedule tick by tick: arrival
// i is due at start + i*interval, the pacer sleeps exactly the gap to the
// next due time, and a caller that falls behind gets the late arrivals
// back-to-back without sleeping — the schedule never shifts to absorb the
// stall (that shift is exactly coordinated omission).
func TestPacerSchedule(t *testing.T) {
	clk := newFakeClock()
	start := clk.Now()
	p, err := NewPacer(clk, 100) // 10ms interval
	if err != nil {
		t.Fatal(err)
	}

	// On-schedule phase: three arrivals at 0ms, 10ms, 20ms.
	for i, wantOff := range []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond} {
		if got := p.Next(); got.Sub(start) != wantOff {
			t.Fatalf("arrival %d due at +%v, want +%v", i, got.Sub(start), wantOff)
		}
	}
	if want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond}; len(clk.waits) != 2 ||
		clk.waits[0] != want[0] || clk.waits[1] != want[1] {
		t.Fatalf("sleeps = %v, want %v (none before the first arrival)", clk.waits, want)
	}

	// The caller stalls 35ms (a slow op at +20ms finishes at +55ms).
	clk.now = start.Add(55 * time.Millisecond)
	clk.waits = nil

	// Arrivals 3..5 (due +30/+40/+50ms) are late: handed out immediately,
	// original due times preserved.
	for i, wantOff := range []time.Duration{30 * time.Millisecond, 40 * time.Millisecond, 50 * time.Millisecond} {
		if got := p.Next(); got.Sub(start) != wantOff {
			t.Fatalf("late arrival %d due at +%v, want +%v", i+3, got.Sub(start), wantOff)
		}
	}
	if len(clk.waits) != 0 {
		t.Fatalf("pacer slept %v while behind schedule", clk.waits)
	}

	// Arrival 6 (due +60ms) is 5ms ahead again: exactly one 5ms sleep.
	if got := p.Next(); got.Sub(start) != 60*time.Millisecond {
		t.Fatalf("arrival 6 due at +%v, want +60ms", got.Sub(start))
	}
	if len(clk.waits) != 1 || clk.waits[0] != 5*time.Millisecond {
		t.Fatalf("catch-up sleep = %v, want [5ms]", clk.waits)
	}

	if p.Scheduled() != 7 {
		t.Fatalf("Scheduled = %d, want 7", p.Scheduled())
	}
}

// TestPacerNoDrift: the due time is computed as a multiple of the
// interval from the start, not by repeated addition, so an awkward rate
// stays within a nanosecond of the ideal schedule after thousands of
// ticks.
func TestPacerNoDrift(t *testing.T) {
	clk := newFakeClock()
	start := clk.Now()
	p, err := NewPacer(clk, 3) // interval 333333333.33...ns
	if err != nil {
		t.Fatal(err)
	}
	var last time.Time
	for i := 0; i < 3000; i++ {
		last = p.Next()
	}
	n := 2999.0
	ideal := start.Add(time.Duration(n * float64(time.Second) / 3))
	if diff := last.Sub(ideal); diff < -time.Nanosecond || diff > time.Nanosecond {
		t.Fatalf("after 3000 ticks schedule drifted %v from ideal", diff)
	}
}

func TestPacerRejectsBadRate(t *testing.T) {
	for _, rate := range []float64{0, -5} {
		if _, err := NewPacer(newFakeClock(), rate); err == nil {
			t.Errorf("NewPacer(rate=%g) accepted", rate)
		}
	}
}
