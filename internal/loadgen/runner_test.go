package loadgen

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/wire"
)

// chaosCloud hosts a wire.Cloud on a fixed loopback address inside the
// test process and can sever every connection and stop accepting — the
// in-process analogue of SIGKILLing qbcloud. The Cloud object (and so the
// stores) survives a kill, modelling a restart that lost no state; lossy
// snapshot recovery is qbsmoke's and cmd/qbload's territory.
type chaosCloud struct {
	t    *testing.T
	cl   *wire.Cloud
	addr string

	mu    sync.Mutex
	lis   net.Listener
	conns map[net.Conn]bool
}

func newChaosCloud(t *testing.T, cl *wire.Cloud) *chaosCloud {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &chaosCloud{t: t, cl: cl, addr: lis.Addr().String(), conns: map[net.Conn]bool{}}
	s.serve(lis)
	t.Cleanup(s.kill)
	return s
}

func (s *chaosCloud) serve(lis net.Listener) {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns[conn] = true
			s.mu.Unlock()
			go s.cl.ServeConn(conn)
		}
	}()
}

// kill severs every live connection and stops accepting new ones.
func (s *chaosCloud) kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis != nil {
		s.lis.Close()
		s.lis = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]bool{}
}

// restart begins accepting again on the same address.
func (s *chaosCloud) restart() {
	s.t.Helper()
	var lis net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if lis, err = net.Listen("tcp", s.addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		s.t.Errorf("rebinding %s: %v", s.addr, err)
		return
	}
	s.serve(lis)
}

// requireClean fails the test unless the run completed with zero errors
// and zero reference-check violations.
func requireClean(t *testing.T, res *Result, wantOps int64) {
	t.Helper()
	if res.Aggregate.Errors != 0 {
		t.Errorf("aggregate errors = %d, want 0", res.Aggregate.Errors)
	}
	if res.Aggregate.ChecksFailed != 0 {
		t.Errorf("checks failed = %d: %s", res.Aggregate.ChecksFailed, res.FirstCheckFailure)
	}
	if wantOps > 0 && res.Aggregate.Ops != wantOps {
		t.Errorf("aggregate ops = %d, want %d", res.Aggregate.Ops, wantOps)
	}
	if res.Aggregate.Ops > 0 {
		if res.Aggregate.P50 <= 0 || res.Aggregate.P99 < res.Aggregate.P50 || res.Aggregate.Max < res.Aggregate.P99 {
			t.Errorf("implausible percentiles: p50=%v p99=%v max=%v",
				res.Aggregate.P50, res.Aggregate.P99, res.Aggregate.Max)
		}
		if res.Aggregate.AchievedQPS <= 0 {
			t.Errorf("achieved QPS = %g, want > 0", res.Aggregate.AchievedQPS)
		}
	}
}

// TestRunInProcessCheckedMixedLoad: the correctness-under-load property
// against the in-process cloud — every read's result set is bounded by
// the sequential reference (baseline ± acknowledged concurrent writes)
// while two tenants × two loops run a Zipf-skewed 80/20 mix.
func TestRunInProcessCheckedMixedLoad(t *testing.T) {
	res, err := Run(Config{
		Tenants: 2, Clients: 2, Rate: 2000, Ops: 150,
		Gen:    GenConfig{ReadFraction: 0.8, ZipfS: 1.2},
		Tuples: 300, DistinctValues: 40, Alpha: 0.3, AssocFraction: 0.5,
		Check: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, 2*2*150)
	for _, tr := range res.Tenants {
		if tr.Ops != 300 {
			t.Errorf("tenant %s ops = %d, want 300", tr.Tenant, tr.Ops)
		}
	}
}

// TestRunRemoteMultiClientCheckedLoad: the remote path with M=3 real
// repro.Clients per tenant — client 0 outsources, the others resume from
// its metadata — all checked against the reference, for both resumable
// store-backed techniques that support multi-client read-your-writes.
func TestRunRemoteMultiClientCheckedLoad(t *testing.T) {
	for _, tech := range []repro.Technique{repro.TechNoInd, repro.TechDetIndex} {
		t.Run(tech.String(), func(t *testing.T) {
			srv := newChaosCloud(t, wire.NewCloud())
			res, err := Run(Config{
				Tenants: 1, Clients: 3, Rate: 600, Ops: 50,
				Gen:    GenConfig{ReadFraction: 0.8, ZipfS: 1.3},
				Tuples: 300, DistinctValues: 40, Alpha: 0.4, AssocFraction: 0.5,
				Technique: tech, CloudAddr: srv.addr,
				StorePrefix: "multi-" + strings.ToLower(tech.String()),
				Check:       true, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			requireClean(t, res, 3*50)
		})
	}
}

// TestRunRejectsRemoteArxWrites: the config guard for the one technique
// whose owner-local token counters break multi-client read-your-writes.
func TestRunRejectsRemoteArxWrites(t *testing.T) {
	_, err := Run(Config{
		Tenants: 1, Clients: 2, Rate: 100, Ops: 1,
		Gen:       GenConfig{ReadFraction: 0.5},
		Technique: repro.TechArx, CloudAddr: "127.0.0.1:1",
	})
	if err == nil || !strings.Contains(err.Error(), "Arx") {
		t.Fatalf("err = %v, want Arx multi-client guard", err)
	}
}

// TestRunSurvivesChaosKillRestartWithChecks is the chaos half of the
// correctness-under-load property: mid-run, every connection to the
// cloud is severed and the listener goes away for ~150ms, then comes
// back on the same address. Reconnecting clients must ride through with
// zero errors AND zero reference-check violations — the kill window is
// measured (ops scheduled during it carry the queueing delay in their
// latency), not just survived.
func TestRunSurvivesChaosKillRestartWithChecks(t *testing.T) {
	srv := newChaosCloud(t, wire.NewCloud())

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(200 * time.Millisecond)
		srv.kill()
		time.Sleep(150 * time.Millisecond)
		srv.restart()
	}()

	res, err := Run(Config{
		Tenants: 1, Clients: 2, Rate: 400, Ops: 120,
		Gen:    GenConfig{ReadFraction: 0.8, ZipfS: 1.2},
		Tuples: 300, DistinctValues: 40, Alpha: 0.4, AssocFraction: 0.5,
		CloudAddr: srv.addr, Reconnect: true,
		StorePrefix: "chaos", Check: true, Seed: 11,
	})
	<-killed
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, 2*120)
	// The schedule is 600ms; the outage alone is 350ms of it. If the
	// run finished before the kill the test proved nothing.
	if res.Elapsed < 350*time.Millisecond {
		t.Errorf("run finished in %v, before the chaos window closed", res.Elapsed)
	}
}

// TestLoadTenantIsolationUnderSaturation reruns the PR 5 two-level
// admission scenario through the load harness — this is the canonical
// tenant-isolation check (the deterministic dispatch-hook test in
// internal/wire pins the mechanism; this pins the effect). Tenant A
// drives far more load than its per-store dispatch bound can clear while
// tenant B trickles paced queries through the same server; B must keep a
// bounded p99 instead of queueing behind A's backlog.
func TestLoadTenantIsolationUnderSaturation(t *testing.T) {
	cl := wire.NewCloud()
	cl.SetConnWorkers(8)
	cl.SetStoreWorkers(2)
	srv := newChaosCloud(t, cl)

	const window = 1200 * time.Millisecond
	var wg sync.WaitGroup
	var resA, resB *Result
	var errA, errB error
	wg.Add(2)
	go func() {
		defer wg.Done()
		resA, errA = Run(Config{
			Tenants: 1, Clients: 2, Rate: 4000, Duration: window,
			Gen:    GenConfig{ReadFraction: 1, ZipfS: 1.2},
			Tuples: 1500, DistinctValues: 60, Alpha: 0.5,
			CloudAddr: srv.addr, StorePrefix: "iso-a", Seed: 21,
			MaxInFlight: 32,
		})
	}()
	go func() {
		defer wg.Done()
		resB, errB = Run(Config{
			Tenants: 1, Clients: 1, Rate: 50, Duration: window,
			Gen:    GenConfig{ReadFraction: 1},
			Tuples: 200, DistinctValues: 30, Alpha: 0.5,
			CloudAddr: srv.addr, StorePrefix: "iso-b", Seed: 22,
		})
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("run errors: A=%v B=%v", errA, errB)
	}
	if resA.Aggregate.Errors != 0 || resB.Aggregate.Errors != 0 {
		t.Fatalf("op errors: A=%d B=%d", resA.Aggregate.Errors, resB.Aggregate.Errors)
	}
	if resB.Aggregate.Ops == 0 {
		t.Fatal("tenant B completed no ops")
	}
	// A is saturating by construction; sanity-check that it really
	// queued (p99 well above B's) before asserting B's bound.
	if resA.Aggregate.P99 < resB.Aggregate.P99 {
		t.Logf("warning: tenant A p99 %v below B's %v — A not saturating?",
			resA.Aggregate.P99, resB.Aggregate.P99)
	}
	// The bound is deliberately generous for 1-CPU -race CI (where the
	// instrumented scans also steal CPU from B): without per-store
	// admission B's p99 tracks A's multi-second backlog; with it B only
	// ever waits behind A's two in-dispatch ops plus CPU contention.
	if limit := 1500 * time.Millisecond; resB.Aggregate.P99 > limit {
		t.Errorf("tenant B p99 = %v under saturating co-tenant (A p99 %v), want <= %v",
			resB.Aggregate.P99, resA.Aggregate.P99, limit)
	}
	t.Logf("A: %d ops p99=%v; B: %d ops p99=%v",
		resA.Aggregate.Ops, resA.Aggregate.P99, resB.Aggregate.Ops, resB.Aggregate.P99)
}
