package loadgen

import (
	"testing"

	"repro/internal/relation"
)

// genValues builds a domain of n values; every third value is
// plain-only, every third sensitive-only, the rest mixed.
func genValues(n int) []ValueInfo {
	vals := make([]ValueInfo, n)
	for i := range vals {
		vals[i] = ValueInfo{Value: relation.Int(int64(i))}
		switch i % 3 {
		case 0:
			vals[i].Plain = 4
		case 1:
			vals[i].Sens = 4
		default:
			vals[i].Plain, vals[i].Sens = 2, 2
		}
	}
	return vals
}

// TestGeneratorZipfFrequencyRank: under Zipf(1.3) the draw frequency is
// monotone over well-separated ranks and the head dominates the tail by
// roughly the theoretical ratio; the uniform stream stays flat.
func TestGeneratorZipfFrequencyRank(t *testing.T) {
	const draws = 30000
	vals := genValues(50)

	g := NewGenerator(vals, GenConfig{ReadFraction: 1, ZipfS: 1.3}, 42)
	counts := make([]int, len(vals))
	for i := 0; i < draws; i++ {
		op := g.Next()
		if !op.Read {
			t.Fatal("ReadFraction=1 generator produced a write")
		}
		counts[op.Value.Int()]++
	}
	for _, pair := range [][2]int{{0, 4}, {4, 15}, {15, 40}} {
		if counts[pair[0]] <= counts[pair[1]] {
			t.Errorf("Zipf rank %d drawn %d times <= rank %d drawn %d times",
				pair[0], counts[pair[0]], pair[1], counts[pair[1]])
		}
	}
	// Zipf(1.3): p(0)/p(10) = 11^1.3 ~ 22.6; assert a loose floor.
	if counts[10] == 0 || counts[0] < 5*counts[10] {
		t.Errorf("Zipf head/rank-10 ratio %d/%d, want >= 5x", counts[0], counts[10])
	}

	u := NewGenerator(vals, GenConfig{ReadFraction: 1}, 42)
	ucounts := make([]int, len(vals))
	for i := 0; i < draws; i++ {
		ucounts[u.Next().Value.Int()]++
	}
	min, max := draws, 0
	for _, c := range ucounts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// Expected 600 per value, sigma ~24: a 1.5x spread means skew.
	if min == 0 || float64(max)/float64(min) > 1.5 {
		t.Errorf("uniform stream spread min=%d max=%d, want ratio <= 1.5", min, max)
	}
}

// TestGeneratorReadWriteMixAndPartitions: the read fraction is honoured
// and writes only target partitions the value already occupies.
func TestGeneratorReadWriteMixAndPartitions(t *testing.T) {
	const draws = 20000
	vals := genValues(30)
	g := NewGenerator(vals, GenConfig{ReadFraction: 0.7}, 7)
	reads, mixedSens, mixedPlain := 0, 0, 0
	for i := 0; i < draws; i++ {
		op := g.Next()
		if op.Read {
			reads++
			continue
		}
		vi := vals[op.Value.Int()]
		switch {
		case vi.Sens == 0 && op.Sensitive:
			t.Fatalf("sensitive write to plain-only value %v", op.Value)
		case vi.Plain == 0 && !op.Sensitive:
			t.Fatalf("plain write to sensitive-only value %v", op.Value)
		case vi.Sens > 0 && vi.Plain > 0:
			if op.Sensitive {
				mixedSens++
			} else {
				mixedPlain++
			}
		}
	}
	if frac := float64(reads) / draws; frac < 0.67 || frac > 0.73 {
		t.Errorf("read fraction %.3f, want ~0.70", frac)
	}
	if mixedSens == 0 || mixedPlain == 0 {
		t.Errorf("mixed values never hit both partitions: sens=%d plain=%d", mixedSens, mixedPlain)
	}
}

// TestGeneratorDeterminism: the stream is a pure function of the seed.
func TestGeneratorDeterminism(t *testing.T) {
	vals := genValues(20)
	cfg := GenConfig{ReadFraction: 0.5, ZipfS: 1.2}
	a := NewGenerator(vals, cfg, 99)
	b := NewGenerator(vals, cfg, 99)
	c := NewGenerator(vals, cfg, 100)
	diverged := false
	for i := 0; i < 1000; i++ {
		opA, opB, opC := a.Next(), b.Next(), c.Next()
		if opA != opB {
			t.Fatalf("same-seed streams diverged at op %d: %+v vs %+v", i, opA, opB)
		}
		if opA != opC {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical 1000-op streams")
	}
}
