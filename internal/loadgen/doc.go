// Package loadgen is the open-loop load harness behind cmd/qbload: it
// drives K simulated tenants × M repro.Clients against a qbcloud (a real
// remote binary, an in-test wire.Cloud, or a fully in-process cloud) with
// Zipf-skewed value selection, a configurable read/write mix, and a paced
// open-loop arrival schedule, recording per-operation latency into
// log-linear histograms and reporting p50/p95/p99/max latency plus
// achieved QPS per tenant and in aggregate.
//
// The pieces compose but stand alone:
//
//   - Histogram: fixed-bucket log-linear latency histogram, atomic,
//     mergeable, ~1.6% worst-case quantisation error.
//   - Pacer: open-loop arrival scheduler over an injectable wire.Clock;
//     late arrivals keep their original due times, so latency measured
//     from the schedule captures queueing delay instead of hiding it
//     (the coordinated-omission correction; see docs/BENCHMARKS.md).
//   - Generator: deterministic per-client op stream (Zipf or uniform
//     selection, read/write mix, write-partition rules).
//   - Run: the tenants × clients driver with an optional result checker
//     that bounds every returned result set against the sequential
//     reference (baseline counts plus acknowledged-write arithmetic),
//     sound under concurrency and under chaos kill/restart.
//   - CloudProc: boots, kills and restarts a real qbcloud binary — the
//     chaos machinery shared with cmd/qbsmoke.
//
// Results convert to the benchfmt schema, so a load run lands in
// BENCH_load.json next to the microbenchmarks and the perf trajectory is
// tracked across PRs.
package loadgen
