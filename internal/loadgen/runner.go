package loadgen

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/relation"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Config parameterises one load run.
type Config struct {
	// Tenants is the number of simulated tenants (K). Each tenant owns an
	// independently keyed relation in its own cloud namespace.
	Tenants int
	// Clients is the number of clients per tenant (M). Against a remote
	// cloud these are real repro.Clients: client 0 outsources and every
	// other client resumes from its metadata over the same namespace.
	// In-process they are M load loops over the tenant's single client
	// (an in-process cloud is private to its client by construction).
	Clients int
	// Rate is the target open-loop arrival rate per tenant in ops/sec,
	// split evenly across its clients.
	Rate float64
	// Duration bounds the run by schedule time; ignored when Ops > 0.
	Duration time.Duration
	// Ops, when > 0, bounds the run by a fixed per-client op count
	// instead (deterministic runs for tests).
	Ops int
	// Gen shapes each client's op stream (read/write mix, Zipf skew).
	Gen GenConfig
	// Tuples and DistinctValues size each tenant's generated relation.
	Tuples, DistinctValues int
	// Alpha is the sensitive fraction of each tenant's relation.
	Alpha float64
	// AssocFraction is the fraction of sensitive values that also keep
	// non-sensitive tuples (workload.GenSpec.AssocFraction); it creates
	// the mixed values whose writes exercise both partitions.
	AssocFraction float64
	// Technique selects the cryptographic search mechanism.
	Technique repro.Technique
	// CloudAddr, when set, targets a remote qbcloud; empty hosts one
	// in-process cloud per tenant.
	CloudAddr string
	// RingAddr, when set, targets a qbring coordinator instead of a single
	// qbcloud: clients route through the ring transport (placement,
	// replication, failover). Mutually exclusive with CloudAddr;
	// CloudConns and Reconnect are ignored in ring mode.
	RingAddr string
	// CloudConns is the connection-pool size per client (remote only).
	CloudConns int
	// Reconnect wraps remote clients in the reconnecting transport so a
	// chaos kill/restart is measured (as latency) instead of fatal.
	Reconnect bool
	// DisableCache turns off the owner-side version cache the remote
	// clients enable by default (repro.Config.DisableCache) — the control
	// arm for before/after comparisons.
	DisableCache bool
	// CacheBytes bounds each client's cache (0 = library default).
	CacheBytes int
	// StorePrefix namespaces this run's stores ("<prefix>/t00", ...).
	StorePrefix string
	// Seed makes datasets, op streams and bin permutations deterministic.
	Seed uint64
	// MaxInFlight caps concurrently outstanding ops per client (the
	// open-loop issue pool); 0 selects 128. When the cap is exhausted the
	// arrival loop blocks, but arrivals keep their scheduled times, so
	// the induced queueing still lands in the latency distribution.
	MaxInFlight int
	// Check cross-checks every read against the sequential reference
	// bounds and counts violations in TenantResult.ChecksFailed.
	Check bool
	// Clock supplies time (pacing and latency measurement); nil selects
	// the real clock.
	Clock wire.Clock
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() error {
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Rate <= 0 {
		return fmt.Errorf("loadgen: Rate must be positive, got %g", c.Rate)
	}
	if c.Duration <= 0 && c.Ops <= 0 {
		return fmt.Errorf("loadgen: one of Duration or Ops is required")
	}
	if c.Tuples <= 0 {
		c.Tuples = 2000
	}
	if c.DistinctValues <= 0 {
		c.DistinctValues = 100
	}
	if c.Gen.ReadFraction < 0 || c.Gen.ReadFraction > 1 {
		return fmt.Errorf("loadgen: ReadFraction must be in [0,1], got %g", c.Gen.ReadFraction)
	}
	if c.StorePrefix == "" {
		c.StorePrefix = "qbload"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 128
	}
	if c.Clock == nil {
		c.Clock = wire.RealClock()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.CloudAddr != "" && c.RingAddr != "" {
		return fmt.Errorf("loadgen: CloudAddr and RingAddr are mutually exclusive")
	}
	if c.remote() && c.Clients > 1 && c.Gen.ReadFraction < 1 && c.Technique == repro.TechArx {
		// Arx search walks per-occurrence tokens counted in owner-local
		// metadata: a reader resumed before a write cannot derive the new
		// occurrence's token, so multi-client read-your-writes does not
		// hold. Refuse instead of reporting phantom lost writes.
		return fmt.Errorf("loadgen: Arx with writes requires Clients=1 (per-occurrence token counters are owner-local)")
	}
	return nil
}

// remote reports whether the run targets out-of-process clouds (single
// qbcloud or ring).
func (c *Config) remote() bool { return c.CloudAddr != "" || c.RingAddr != "" }

// TenantResult is one tenant's (or the aggregate) scoreboard.
type TenantResult struct {
	Tenant       string
	Store        string
	TargetQPS    float64
	Ops          int64
	Errors       int64
	ChecksFailed int64
	AchievedQPS  float64
	Mean         time.Duration
	P50, P95     time.Duration
	P99, Max     time.Duration
	// Owner-side version-cache totals, summed across the tenant's clients
	// (zero when the cache is off).
	CacheHits       uint64
	CacheMisses     uint64
	CacheBytesSaved uint64
}

// Result is the outcome of one Run.
type Result struct {
	Elapsed   time.Duration
	Tenants   []TenantResult
	Aggregate TenantResult
	// FirstCheckFailure describes the first reference-check violation
	// (empty when none).
	FirstCheckFailure string
}

// valueState is the reference checker's per-value write accounting.
type valueState struct {
	base   int64 // tuples at Outsource
	issued atomic.Int64
	acked  atomic.Int64
}

// tenantState is one tenant's live harness.
type tenantState struct {
	name, store string
	targetRate  float64
	values      []ValueInfo
	arity       int

	writer  *repro.Client   // all mutations route here (owner metadata is single-writer)
	clients []*repro.Client // query clients; index 0 is the writer

	checkOn bool
	check   map[relation.Value]*valueState

	hist         Histogram
	ops          atomic.Int64
	errors       atomic.Int64
	checksFailed atomic.Int64
	nextID       atomic.Int64

	failMu    sync.Mutex
	firstFail string
}

// setupTenant generates the tenant's dataset, outsources it, and (against
// a remote cloud) fans out reader clients resumed from the writer's
// metadata snapshot.
func setupTenant(cfg *Config, t int) (*tenantState, error) {
	seed := cfg.Seed + uint64(t)*1009
	ds, err := workload.Generate(workload.GenSpec{
		Name:           fmt.Sprintf("Load%02d", t),
		Tuples:         cfg.Tuples,
		DistinctValues: cfg.DistinctValues,
		Alpha:          cfg.Alpha,
		AssocFraction:  cfg.AssocFraction,
		ExtraColumns:   1,
		Seed:           int64(seed),
	})
	if err != nil {
		return nil, err
	}

	ts := &tenantState{
		name:       fmt.Sprintf("t%02d", t),
		targetRate: cfg.Rate,
		arity:      ds.Relation.Schema.Arity(),
		checkOn:    cfg.Check,
		check:      make(map[relation.Value]*valueState, len(ds.Values)),
	}
	ts.nextID.Store(int64(cfg.Tuples + 1_000_000))

	// Baseline per-value, per-partition counts — captured before
	// Outsource so the checker's bounds are the sequential reference.
	plain := make(map[relation.Value]int, len(ds.Values))
	sens := make(map[relation.Value]int, len(ds.Values))
	for _, tup := range ds.Relation.Tuples {
		v := tup.Values[0]
		if ds.SensitiveIDs[tup.ID] {
			sens[v]++
		} else {
			plain[v]++
		}
	}
	for _, v := range ds.Values {
		ts.values = append(ts.values, ValueInfo{Value: v, Plain: plain[v], Sens: sens[v]})
		ts.check[v] = &valueState{base: int64(plain[v] + sens[v])}
	}

	permSeed := seed
	rcfg := repro.Config{
		MasterKey: []byte(fmt.Sprintf("qbload tenant %02d key", t)),
		Attr:      workload.Attr,
		Technique: cfg.Technique,
		Seed:      &permSeed,
	}
	if cfg.remote() {
		rcfg.CloudAddr = cfg.CloudAddr
		rcfg.Ring = cfg.RingAddr
		rcfg.CloudConns = cfg.CloudConns
		rcfg.Reconnect = cfg.Reconnect
		rcfg.DisableCache = cfg.DisableCache
		rcfg.CacheBytes = cfg.CacheBytes
		ts.store = fmt.Sprintf("%s/%s", cfg.StorePrefix, ts.name)
		rcfg.Store = ts.store
	}

	writer, err := repro.NewClient(rcfg)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", ts.name, err)
	}
	ts.writer = writer
	ts.clients = []*repro.Client{writer}
	if err := writer.Outsource(ds.Relation, ds.Sensitive); err != nil {
		ts.close()
		return nil, fmt.Errorf("tenant %s: outsource: %w", ts.name, err)
	}

	if cfg.remote() && cfg.Clients > 1 {
		var meta bytes.Buffer
		if err := writer.SaveMetadata(&meta); err != nil {
			ts.close()
			return nil, fmt.Errorf("tenant %s: save metadata: %w", ts.name, err)
		}
		for c := 1; c < cfg.Clients; c++ {
			rc, err := repro.NewClient(rcfg)
			if err != nil {
				ts.close()
				return nil, fmt.Errorf("tenant %s: client %d: %w", ts.name, c, err)
			}
			ts.clients = append(ts.clients, rc)
			if err := rc.Resume(bytes.NewReader(meta.Bytes())); err != nil {
				ts.close()
				return nil, fmt.Errorf("tenant %s: client %d resume: %w", ts.name, c, err)
			}
		}
	}
	return ts, nil
}

func (ts *tenantState) close() {
	for _, c := range ts.clients {
		c.Close()
	}
}

// noteCheckFailure records the first violation verbatim (the count tracks
// the rest).
func (ts *tenantState) noteCheckFailure(format string, args ...any) {
	ts.checksFailed.Add(1)
	ts.failMu.Lock()
	if ts.firstFail == "" {
		ts.firstFail = fmt.Sprintf(format, args...)
	}
	ts.failMu.Unlock()
}

// issue executes one op and records its latency from the scheduled
// arrival time (not the issue time: with the schedule as the origin,
// time an op spent queueing behind a stall is measured, not omitted).
func (ts *tenantState) issue(cli *repro.Client, op Op, sched time.Time, clock wire.Clock) {
	st := ts.check[op.Value]
	if op.Read {
		var lo int64
		if ts.checkOn {
			// Writes acknowledged before the read was issued must all be
			// visible; writes merely issued may be.
			lo = st.base + st.acked.Load()
		}
		got, err := cli.Query(op.Value)
		if err != nil {
			ts.errors.Add(1)
			return
		}
		ts.hist.Record(clock.Now().Sub(sched))
		ts.ops.Add(1)
		if ts.checkOn {
			hi := st.base + st.issued.Load()
			if n := int64(len(got)); n < lo || n > hi {
				ts.noteCheckFailure("tenant %s: Query(%v) returned %d tuples, want within [%d, %d]",
					ts.name, op.Value, n, lo, hi)
				return
			}
			for _, tup := range got {
				if !tup.Values[0].Equal(op.Value) {
					ts.noteCheckFailure("tenant %s: Query(%v) returned tuple %d with value %v",
						ts.name, op.Value, tup.ID, tup.Values[0])
					return
				}
			}
		}
		return
	}

	// Mutation: pinned to the writer client. A failed insert keeps its
	// `issued` increment — it may have been partially applied, and the
	// upper bound must stay an upper bound.
	if ts.checkOn {
		st.issued.Add(1)
	}
	tup := relation.Tuple{ID: int(ts.nextID.Add(1)), Values: make([]relation.Value, ts.arity)}
	tup.Values[0] = op.Value
	for i := 1; i < ts.arity; i++ {
		tup.Values[i] = relation.Int(int64(tup.ID))
	}
	if err := ts.writer.Insert(tup, op.Sensitive); err != nil {
		ts.errors.Add(1)
		return
	}
	if ts.checkOn {
		st.acked.Add(1)
	}
	ts.hist.Record(clock.Now().Sub(sched))
	ts.ops.Add(1)
}

// clientLoop is one client's open-loop arrival process.
func (ts *tenantState) clientLoop(cfg *Config, slot int, start time.Time) error {
	cli := ts.clients[slot%len(ts.clients)]
	gen := NewGenerator(ts.values, cfg.Gen, cfg.Seed^hashString(ts.name)^(uint64(slot)+1)*0x9e3779b97f4a7c15)
	pacer, err := NewPacer(cfg.Clock, cfg.Rate/float64(cfg.Clients))
	if err != nil {
		return err
	}
	sem := make(chan struct{}, cfg.MaxInFlight)
	var inflight sync.WaitGroup
	for i := 0; cfg.Ops <= 0 || i < cfg.Ops; i++ {
		sched := pacer.Next()
		// Duration mode truncates the arrival process at the wall
		// deadline too: when the target rate exceeds capacity the
		// remaining schedule would otherwise be issued (and measured)
		// long after the window — unbounded wall time for a bounded run.
		// The achieved-vs-target QPS gap is how that shedding reports.
		if cfg.Ops <= 0 && (sched.Sub(start) >= cfg.Duration ||
			cfg.Clock.Now().Sub(start) >= cfg.Duration) {
			break
		}
		op := gen.Next()
		sem <- struct{}{}
		inflight.Add(1)
		go func() {
			defer func() { <-sem; inflight.Done() }()
			ts.issue(cli, op, sched, cfg.Clock)
		}()
	}
	inflight.Wait()
	return nil
}

// hashString is a small FNV-1a so per-client generator seeds differ
// across tenants without coordinating.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// result converts the tenant's counters into its scoreboard row.
func (ts *tenantState) result(elapsed time.Duration) TenantResult {
	r := TenantResult{
		Tenant:       ts.name,
		Store:        ts.store,
		TargetQPS:    ts.targetRate,
		Ops:          ts.ops.Load(),
		Errors:       ts.errors.Load(),
		ChecksFailed: ts.checksFailed.Load(),
		Mean:         ts.hist.Mean(),
		P50:          ts.hist.Percentile(50),
		P95:          ts.hist.Percentile(95),
		P99:          ts.hist.Percentile(99),
		Max:          ts.hist.Max(),
	}
	for _, c := range ts.clients {
		cs := c.CacheStats()
		r.CacheHits += cs.Hits
		r.CacheMisses += cs.Misses
		r.CacheBytesSaved += cs.BytesSaved
	}
	if elapsed > 0 {
		r.AchievedQPS = float64(r.Ops) / elapsed.Seconds()
	}
	return r
}

// Run executes the configured load and returns the scoreboard. Setup
// (dataset generation and outsourcing) happens before the clock starts;
// teardown closes every client.
func Run(cfg Config) (*Result, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	tenants := make([]*tenantState, cfg.Tenants)
	defer func() {
		for _, ts := range tenants {
			if ts != nil {
				ts.close()
			}
		}
	}()
	for t := range tenants {
		ts, err := setupTenant(&cfg, t)
		if err != nil {
			return nil, err
		}
		tenants[t] = ts
		cfg.Logf("loadgen: tenant %s ready (%d tuples, %d values, %d clients)",
			ts.name, cfg.Tuples, len(ts.values), len(ts.clients))
	}

	start := cfg.Clock.Now()
	var (
		wg      sync.WaitGroup
		loopMu  sync.Mutex
		loopErr error
	)
	for _, ts := range tenants {
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func(ts *tenantState, c int) {
				defer wg.Done()
				if err := ts.clientLoop(&cfg, c, start); err != nil {
					loopMu.Lock()
					if loopErr == nil {
						loopErr = err
					}
					loopMu.Unlock()
				}
			}(ts, c)
		}
	}
	wg.Wait()
	if loopErr != nil {
		return nil, loopErr
	}
	elapsed := cfg.Clock.Now().Sub(start)

	res := &Result{Elapsed: elapsed}
	var agg Histogram
	aggRow := TenantResult{Tenant: "aggregate", TargetQPS: cfg.Rate * float64(cfg.Tenants)}
	for _, ts := range tenants {
		row := ts.result(elapsed)
		res.Tenants = append(res.Tenants, row)
		agg.Merge(&ts.hist)
		aggRow.Ops += row.Ops
		aggRow.Errors += row.Errors
		aggRow.ChecksFailed += row.ChecksFailed
		aggRow.CacheHits += row.CacheHits
		aggRow.CacheMisses += row.CacheMisses
		aggRow.CacheBytesSaved += row.CacheBytesSaved
		ts.failMu.Lock()
		if res.FirstCheckFailure == "" && ts.firstFail != "" {
			res.FirstCheckFailure = ts.firstFail
		}
		ts.failMu.Unlock()
	}
	aggRow.Mean, aggRow.P50, aggRow.P95 = agg.Mean(), agg.Percentile(50), agg.Percentile(95)
	aggRow.P99, aggRow.Max = agg.Percentile(99), agg.Max()
	if elapsed > 0 {
		aggRow.AchievedQPS = float64(aggRow.Ops) / elapsed.Seconds()
	}
	res.Aggregate = aggRow
	return res, nil
}
