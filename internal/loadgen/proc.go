package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// CloudProc is a real server binary (qbcloud or qbring) running as a
// child process: the chaos machinery shared by cmd/qbsmoke and
// cmd/qbload. It owns the process handle and a single reader goroutine
// over the combined stdout/stderr stream, so the boot-time address scan
// and later output-content checks (restore lines, shutdown stats) never
// race on the pipe.
type CloudProc struct {
	// Addr is the listen address the process reported, ready to dial.
	Addr string

	bin  string
	cmd  *exec.Cmd
	mu   sync.Mutex
	buf  strings.Builder
	done chan struct{} // closed when the output stream hits EOF
}

// BootRing starts the qbring binary and waits for it to report its
// listen address, exactly like BootCloud (both servers print the same
// "serving on" line).
func BootRing(bin string, extra ...string) (*CloudProc, error) {
	return BootCloud(bin, extra...)
}

// BootCloud starts the qbcloud binary and waits (up to 10s) for it to
// report its listen address. By default it listens on an ephemeral
// loopback port; pass "-addr", "host:port" in extra to pin one, plus
// any other qbcloud flags (-state, -snapshot-every, -workers, ...).
func BootCloud(bin string, extra ...string) (*CloudProc, error) {
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	p := &CloudProc{bin: bin, cmd: cmd, done: make(chan struct{})}
	// Both servers print "<name>: serving on 127.0.0.1:PORT" once
	// listening (qbring appends ring parameters after the address).
	addrCh := make(chan string, 1)
	go p.read(pipe, addrCh)
	select {
	case addr := <-addrCh:
		p.Addr = addr
		return p, nil
	case <-p.done:
		p.Kill()
		return nil, fmt.Errorf("%s exited before reporting its address:\n%s", bin, p.Output())
	case <-time.After(10 * time.Second):
		p.Kill()
		return nil, fmt.Errorf("%s did not report an address within 10s", bin)
	}
}

func (p *CloudProc) read(pipe io.Reader, addrCh chan<- string) {
	defer close(p.done)
	sc := bufio.NewScanner(pipe)
	for sc.Scan() {
		line := sc.Text()
		p.mu.Lock()
		p.buf.WriteString(line)
		p.buf.WriteByte('\n')
		p.mu.Unlock()
		if idx := strings.Index(line, ": serving on "); idx >= 0 {
			rest := strings.TrimSpace(line[idx+len(": serving on "):])
			if f := strings.Fields(rest); len(f) > 0 {
				select {
				case addrCh <- f[0]:
				default:
				}
			}
		}
	}
}

// Output returns everything the process has printed so far.
func (p *CloudProc) Output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

// Kill SIGKILLs the process: no shutdown save, no warning — the crash
// half of a chaos phase. Safe to call on an already-dead process.
func (p *CloudProc) Kill() error { return p.cmd.Process.Kill() }

// Stop asks for a graceful shutdown (SIGTERM), which makes qbcloud save
// a final snapshot and print per-store stats before exiting.
func (p *CloudProc) Stop() error { return p.cmd.Process.Signal(syscall.SIGTERM) }

// WaitExit waits for the output stream to hit EOF and the process to be
// reaped, killing it if that takes longer than timeout. The exit status
// is not checked: callers that Kill expect a failure status, and
// callers that Stop assert on Output content instead.
func (p *CloudProc) WaitExit(timeout time.Duration) error {
	select {
	case <-p.done:
	case <-time.After(timeout):
		p.Kill()
		return fmt.Errorf("%s did not exit within %v", p.bin, timeout)
	}
	p.cmd.Wait()
	return nil
}
