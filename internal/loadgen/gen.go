package loadgen

import (
	mrand "math/rand"

	"repro/internal/relation"
)

// Op is one generated operation of the load stream.
type Op struct {
	// Read selects a point query; otherwise the op inserts a fresh tuple.
	Read bool
	// Value is the searchable-attribute value queried or inserted.
	Value relation.Value
	// Sensitive is the partition of an inserted tuple (ignored for reads).
	Sensitive bool
}

// ValueInfo is one domain value with its baseline per-partition tuple
// counts at Outsource time. The counts drive two decisions: which
// partition a write may target (see Next), and the reference checker's
// expected-result bounds.
type ValueInfo struct {
	Value relation.Value
	// Plain and Sens count the value's non-sensitive / sensitive tuples
	// in the outsourced relation.
	Plain, Sens int
}

// GenConfig shapes a client's operation stream.
type GenConfig struct {
	// ReadFraction is the probability an op is a point query; the rest
	// are inserts. 1 means read-only.
	ReadFraction float64
	// ZipfS > 1 skews value selection toward low ranks with a Zipf(s)
	// distribution (the multi-tenant skewed-selection workload of the
	// PANDA experiments); <= 1 selects uniformly.
	ZipfS float64
}

// Generator draws a deterministic operation stream: Zipf- (or uniformly-)
// distributed value selection over the tenant's domain, a configurable
// read/write mix, and per-write partition choice. It reuses the
// math/rand Zipf convention of internal/workload (rank 0 is the heaviest
// value), so a load stream and a workload.QueryStream with the same skew
// describe the same distribution. Not safe for concurrent use; each load
// goroutine owns one.
type Generator struct {
	rnd    *mrand.Rand
	zipf   *mrand.Zipf
	values []ValueInfo
	cfg    GenConfig
}

// NewGenerator builds a generator over the tenant's value domain, ranked
// by index. The stream is fully determined by (values, cfg, seed).
func NewGenerator(values []ValueInfo, cfg GenConfig, seed uint64) *Generator {
	rnd := mrand.New(mrand.NewSource(int64(seed)))
	g := &Generator{rnd: rnd, values: values, cfg: cfg}
	if cfg.ZipfS > 1 && len(values) > 1 {
		g.zipf = mrand.NewZipf(rnd, cfg.ZipfS, 1, uint64(len(values)-1))
	}
	return g
}

// rank draws the next value index.
func (g *Generator) rank() int {
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	return g.rnd.Intn(len(g.values))
}

// Next draws the next operation. Writes only target partitions the value
// already occupies: an owner's query metadata binds each value to the
// bins it was outsourced into, so a tuple inserted into a partition the
// value never had would be invisible to reader clients resumed from a
// pre-insert metadata snapshot (and to nothing else — the checker would
// flag exactly that as a lost write). Values present in both partitions
// split their writes evenly.
func (g *Generator) Next() Op {
	v := g.values[g.rank()]
	if g.rnd.Float64() < g.cfg.ReadFraction {
		return Op{Read: true, Value: v.Value}
	}
	var sensitive bool
	switch {
	case v.Sens > 0 && v.Plain > 0:
		sensitive = g.rnd.Intn(2) == 0
	case v.Sens > 0:
		sensitive = true
	default:
		sensitive = false
	}
	return Op{Value: v.Value, Sensitive: sensitive}
}
