package loadgen

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// Pacer schedules an open-loop arrival process: the i-th operation is due
// at start + i/rate seconds, independent of how long earlier operations
// took. When the caller falls behind (slow ops, a stalled server), Next
// returns immediately with the original schedule — late arrivals are
// issued back-to-back, never silently skipped — and latency measured from
// the *scheduled* time keeps the queueing delay in the numbers instead of
// coordinated-omission-ing it away (see docs/BENCHMARKS.md).
//
// Time comes from an injectable wire.Clock so the schedule is
// unit-testable tick by tick without wall sleeps.
type Pacer struct {
	clock      wire.Clock
	start      time.Time
	intervalNs float64
	n          int64 // arrivals handed out so far
}

// NewPacer builds a pacer issuing rate arrivals per second, the first one
// due immediately. A nil clock selects the real one.
func NewPacer(clock wire.Clock, rate float64) (*Pacer, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: pacer rate must be positive, got %g", rate)
	}
	if clock == nil {
		clock = wire.RealClock()
	}
	return &Pacer{
		clock:      clock,
		start:      clock.Now(),
		intervalNs: float64(time.Second) / rate,
	}, nil
}

// Next blocks until the next scheduled arrival is due and returns its
// scheduled (not actual) time. The schedule is computed as a multiple of
// the interval from the start instant, so rounding never accumulates into
// drift. Not safe for concurrent use; give each load goroutine its own
// pacer.
func (p *Pacer) Next() time.Time {
	due := p.start.Add(time.Duration(float64(p.n) * p.intervalNs))
	p.n++
	if wait := due.Sub(p.clock.Now()); wait > 0 {
		<-p.clock.After(wait)
	}
	return due
}

// Scheduled reports how many arrivals Next has handed out.
func (p *Pacer) Scheduled() int64 { return p.n }
