package loadgen

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/benchfmt"
)

// metrics flattens one scoreboard row into normalised benchfmt keys.
// Latencies are reported in microseconds (p50_us, ...): fine enough for
// the wire-protocol hot path, coarse enough that trajectory diffs aren't
// nanosecond noise.
func (r TenantResult) metrics() map[string]float64 {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return map[string]float64{
		"queries_per_sec":   r.AchievedQPS,
		"target_qps":        r.TargetQPS,
		"ops":               float64(r.Ops),
		"errors":            float64(r.Errors),
		"checks_failed":     float64(r.ChecksFailed),
		"mean_us":           us(r.Mean),
		"p50_us":            us(r.P50),
		"p95_us":            us(r.P95),
		"p99_us":            us(r.P99),
		"max_us":            us(r.Max),
		"cache_hits":        float64(r.CacheHits),
		"cache_misses":      float64(r.CacheMisses),
		"cache_bytes_saved": float64(r.CacheBytesSaved),
	}
}

// Report converts the run into the benchfmt document tracked in
// BENCH_load.json: one series per tenant plus the aggregate, with the
// run's parameters recorded under config.
func (res *Result) Report(cfg Config, generatedUnix int64) benchfmt.Report {
	return res.ReportNamed("qbload", cfg, generatedUnix)
}

// ReportNamed is Report with the benchmark name prefix chosen by the
// caller, so one file can hold several arms of a comparison (e.g.
// BENCH_ring.json's single-node and 3-node series).
func (res *Result) ReportNamed(name string, cfg Config, generatedUnix int64) benchfmt.Report {
	rep := benchfmt.Report{
		GeneratedUnix: generatedUnix,
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Config: map[string]any{
			"tenants":         cfg.Tenants,
			"clients":         cfg.Clients,
			"rate_per_tenant": cfg.Rate,
			"read_fraction":   cfg.Gen.ReadFraction,
			"zipf_s":          cfg.Gen.ZipfS,
			"tuples":          cfg.Tuples,
			"distinct_values": cfg.DistinctValues,
			"sensitive_alpha": cfg.Alpha,
			"technique":       cfg.Technique.String(),
			"remote":          cfg.remote(),
			"ring":            cfg.RingAddr != "",
			"reconnect":       cfg.Reconnect,
			"cache":           cfg.remote() && !cfg.DisableCache,
			"elapsed_seconds": res.Elapsed.Seconds(),
		},
	}
	for _, t := range res.Tenants {
		rep.Benchmarks = append(rep.Benchmarks, benchfmt.Result{
			Name:       name + "/tenant=" + t.Tenant,
			Iterations: t.Ops,
			Metrics:    t.metrics(),
		})
	}
	rep.Benchmarks = append(rep.Benchmarks, benchfmt.Result{
		Name:       name + "/aggregate",
		Iterations: res.Aggregate.Ops,
		Metrics:    res.Aggregate.metrics(),
	})
	return rep
}

// WriteTable prints the human-readable scoreboard.
func (res *Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-10s %10s %10s %8s %8s %10s %10s %10s %10s\n",
		"tenant", "target", "achieved", "ops", "errors", "p50", "p95", "p99", "max")
	row := func(t TenantResult) {
		fmt.Fprintf(w, "%-10s %10.0f %10.1f %8d %8d %10s %10s %10s %10s\n",
			t.Tenant, t.TargetQPS, t.AchievedQPS, t.Ops, t.Errors,
			t.P50.Round(time.Microsecond), t.P95.Round(time.Microsecond),
			t.P99.Round(time.Microsecond), t.Max.Round(time.Microsecond))
	}
	for _, t := range res.Tenants {
		row(t)
	}
	row(res.Aggregate)
	if a := res.Aggregate; a.CacheHits+a.CacheMisses > 0 {
		fmt.Fprintf(w, "owner cache: hits=%d misses=%d bytes_saved=%d\n",
			a.CacheHits, a.CacheMisses, a.CacheBytesSaved)
	}
	if res.FirstCheckFailure != "" {
		fmt.Fprintf(w, "first check failure: %s\n", res.FirstCheckFailure)
	}
}
