package loadgen

import (
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-linear layout: indices are monotone,
// upper bounds are exact inverses, and quantisation error is bounded by
// one sub-bucket (1/64).
func TestBucketBoundaries(t *testing.T) {
	// Linear region: width-1 buckets, exact.
	for v := int64(0); v < subCount; v++ {
		if idx := bucketIndex(v); idx != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, idx, v)
		}
		if up := bucketUpper(int(v)); up != v {
			t.Fatalf("bucketUpper(%d) = %d, want %d", v, up, v)
		}
	}
	// Exact boundary cases around octave edges.
	cases := []struct {
		v     int64
		idx   int
		upper int64
	}{
		{63, 63, 63},
		{64, 64, 64},    // first octave row still width 1
		{127, 127, 127}, // last width-1 bucket
		{128, 128, 129}, // width-2 buckets begin
		{129, 128, 129},
		{130, 129, 131},
		{255, 191, 255},
		{256, 192, 259}, // width-4 buckets begin
	}
	for _, c := range cases {
		if idx := bucketIndex(c.v); idx != c.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, idx, c.idx)
		}
		if up := bucketUpper(c.idx); up != c.upper {
			t.Errorf("bucketUpper(%d) = %d, want %d", c.idx, up, c.upper)
		}
	}
	// Error bound and inversion across the whole range.
	for _, v := range []int64{1, 65, 1000, 12345, 1_000_000, 123_456_789,
		int64(time.Hour), 1 << 40, 1 << 55, 1<<62 + 12345, 1<<63 - 1} {
		idx := bucketIndex(v)
		if idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) overflowed: %d", v, idx)
		}
		up := bucketUpper(idx)
		if up < v {
			t.Errorf("bucketUpper(bucketIndex(%d)) = %d < value", v, up)
		}
		if v >= subCount && up-v > v/(subCount/2) {
			t.Errorf("quantisation error for %d: upper %d off by %d (> v/32)", v, up, up-v)
		}
		if back := bucketIndex(up); back != idx {
			t.Errorf("bucketIndex(bucketUpper(%d)) = %d, want %d", idx, back, idx)
		}
	}
}

// TestPercentileGolden checks percentile math against hand-computed
// values on exactly-representable samples.
func TestPercentileGolden(t *testing.T) {
	var h Histogram
	// 0..63 ns once each: every sample sits in its own width-1 bucket.
	for v := 0; v < 64; v++ {
		h.Record(time.Duration(v))
	}
	if got := h.Count(); got != 64 {
		t.Fatalf("Count = %d, want 64", got)
	}
	for _, c := range []struct {
		p    float64
		want time.Duration
	}{
		{0, 0},     // rank 1 -> smallest sample
		{50, 31},   // rank 32 -> 32nd smallest = 31ns
		{75, 47},   // rank 48
		{98.5, 63}, // rank ceil(63.04) = 64 -> largest sample
		{100, 63},  // rank 64
	} {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := h.Max(); got != 63 {
		t.Errorf("Max = %v, want 63ns", got)
	}
	if got := h.Mean(); got != time.Duration(31) { // floor(2016/64) = 31.5 -> 31
		t.Errorf("Mean = %v, want 31ns", got)
	}
}

// TestPercentileKnownDistribution checks p50/p99/p99.9 of a bimodal
// distribution land in the right mode within the 1/64 error bound.
func TestPercentileKnownDistribution(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Millisecond)
	}
	within := func(name string, got, base time.Duration) {
		t.Helper()
		if got < base || got > base+base/32 {
			t.Errorf("%s = %v, want within [%v, %v]", name, got, base, base+base/32)
		}
	}
	within("p50", h.Percentile(50), time.Millisecond)
	within("p99", h.Percentile(99), time.Millisecond) // rank 1000 of 1010 is still 1ms
	within("p99.9", h.Percentile(99.9), 100*time.Millisecond)
	within("max", h.Max(), 100*time.Millisecond)
}

func TestHistogramMergeAndNegatives(t *testing.T) {
	var a, b, all Histogram
	for i := 1; i <= 500; i++ {
		d := time.Duration(i) * time.Microsecond
		a.Record(d)
		all.Record(d)
	}
	for i := 501; i <= 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		b.Record(d)
		all.Record(d)
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), all.Count())
	}
	for _, p := range []float64{10, 50, 90, 99, 100} {
		if got, want := a.Percentile(p), all.Percentile(p); got != want {
			t.Errorf("merged Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	if a.Mean() != all.Mean() {
		t.Errorf("merged Mean = %v, want %v", a.Mean(), all.Mean())
	}

	var h Histogram
	h.Record(-time.Second) // clamps to 0 instead of corrupting an index
	if h.Count() != 1 || h.Percentile(100) != 0 {
		t.Errorf("negative sample: count=%d p100=%v, want 1 and 0", h.Count(), h.Percentile(100))
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(99) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Errorf("empty histogram not all-zero: %s", h.String())
	}
}
