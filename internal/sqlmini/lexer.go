// Package sqlmini implements a small SQL front-end over the QB client: a
// hand-written lexer and recursive-descent parser for the selection-query
// dialect the paper targets (point and range selections, the aggregates QB
// extends to, and inserts), plus an executor that routes statements through
// the secure partitioned client.
//
// Supported grammar (case-insensitive keywords):
//
//	SELECT * | col[, col...] | COUNT(*) | SUM(col) | MIN(col) | MAX(col)
//	    FROM table WHERE attr = literal
//	                    | attr BETWEEN literal AND literal
//	INSERT INTO table VALUES (literal[, literal...])
//
// Literals are integers or single-quoted strings.
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // single-char: , ( ) = *
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises the statement.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == ',' || c == '(' || c == ')' || c == '=' || c == '*' || c == ';':
			if c != ';' {
				l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
			}
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '-' || unicode.IsDigit(rune(c)):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			return nil, fmt.Errorf("sqlmini: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: len(src)})
	return l.toks, nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlmini: unterminated string starting at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}
