package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// StmtKind distinguishes statements.
type StmtKind int

const (
	// StmtSelect is a SELECT.
	StmtSelect StmtKind = iota
	// StmtInsert is an INSERT.
	StmtInsert
)

// AggKind is an optional aggregate in the select list.
type AggKind int

const (
	// AggNone means a plain projection.
	AggNone AggKind = iota
	// AggCount, AggSum, AggMin, AggMax mirror the owner's aggregates.
	AggCount
	AggSum
	AggMin
	AggMax
)

// WhereOp is the predicate operator.
type WhereOp int

const (
	// OpEq is attr = literal.
	OpEq WhereOp = iota
	// OpBetween is attr BETWEEN lo AND hi.
	OpBetween
)

// Where is the (single) predicate of a select.
type Where struct {
	Attr  string
	Op    WhereOp
	Value relation.Value
	Hi    relation.Value
}

// Stmt is a parsed statement.
type Stmt struct {
	Kind    StmtKind
	Table   string
	Columns []string // nil means *
	Agg     AggKind
	AggCol  string
	Where   *Where
	Values  []relation.Value // INSERT
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses one statement.
func Parse(src string) (*Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt *Stmt
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.peekKeyword("INSERT"):
		stmt, err = p.parseInsert()
	default:
		return nil, fmt.Errorf("sqlmini: expected SELECT or INSERT, got %q", p.cur().text)
	}
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sqlmini: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peekKeyword(kw) {
		return fmt.Errorf("sqlmini: expected %s at %d, got %q", kw, p.cur().pos, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.cur()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("sqlmini: expected %q at %d, got %q", sym, t.pos, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlmini: expected identifier at %d, got %q", t.pos, t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseLiteral() (relation.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return relation.Value{}, fmt.Errorf("sqlmini: bad number %q: %v", t.text, err)
		}
		return relation.Int(n), nil
	case tokString:
		p.advance()
		return relation.Str(t.text), nil
	default:
		return relation.Value{}, fmt.Errorf("sqlmini: expected literal at %d, got %q", t.pos, t.text)
	}
}

var aggKeywords = map[string]AggKind{
	"COUNT": AggCount, "SUM": AggSum, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parseSelect() (*Stmt, error) {
	p.advance() // SELECT
	stmt := &Stmt{Kind: StmtSelect}

	// Select list: *, aggregate, or column list.
	t := p.cur()
	switch {
	case t.kind == tokSymbol && t.text == "*":
		p.advance()
	case t.kind == tokIdent && aggLookup(t.text) != AggNone && p.toks[p.pos+1].text == "(":
		stmt.Agg = aggLookup(t.text)
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		inner := p.cur()
		if inner.kind == tokSymbol && inner.text == "*" {
			if stmt.Agg != AggCount {
				return nil, fmt.Errorf("sqlmini: %s(*) is not supported; name a column", strings.ToUpper(t.text))
			}
			p.advance()
		} else {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.AggCol = col
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	default:
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.advance()
				continue
			}
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = table

	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	attr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	w := &Where{Attr: attr}
	switch {
	case p.cur().kind == tokSymbol && p.cur().text == "=":
		p.advance()
		w.Op = OpEq
		if w.Value, err = p.parseLiteral(); err != nil {
			return nil, err
		}
	case p.peekKeyword("BETWEEN"):
		p.advance()
		w.Op = OpBetween
		if w.Value, err = p.parseLiteral(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		if w.Hi, err = p.parseLiteral(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sqlmini: expected = or BETWEEN at %d, got %q", p.cur().pos, p.cur().text)
	}
	stmt.Where = w
	return stmt, nil
}

func aggLookup(ident string) AggKind {
	return aggKeywords[strings.ToUpper(ident)]
}

func (p *parser) parseInsert() (*Stmt, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &Stmt{Kind: StmtInsert, Table: table}
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Values = append(stmt.Values, v)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}
