package sqlmini

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/relation"
	"repro/internal/workload"
)

func TestParseSelectStar(t *testing.T) {
	s, err := Parse("SELECT * FROM Employee WHERE EId = 'E101'")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != StmtSelect || s.Table != "Employee" || s.Columns != nil {
		t.Fatalf("stmt = %+v", s)
	}
	if s.Where.Op != OpEq || !s.Where.Value.Equal(relation.Str("E101")) {
		t.Fatalf("where = %+v", s.Where)
	}
}

func TestParseSelectColumns(t *testing.T) {
	s, err := Parse("select FirstName, LastName from Employee where EId = 'E1'")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Columns, []string{"FirstName", "LastName"}) {
		t.Fatalf("columns = %v", s.Columns)
	}
}

func TestParseBetween(t *testing.T) {
	s, err := Parse("SELECT * FROM T WHERE K BETWEEN 5 AND 10;")
	if err != nil {
		t.Fatal(err)
	}
	if s.Where.Op != OpBetween || s.Where.Value.Int() != 5 || s.Where.Hi.Int() != 10 {
		t.Fatalf("where = %+v", s.Where)
	}
}

func TestParseAggregates(t *testing.T) {
	cases := map[string]AggKind{
		"SELECT COUNT(*) FROM T WHERE K = 1": AggCount,
		"SELECT SUM(P) FROM T WHERE K = 1":   AggSum,
		"SELECT MIN(P) FROM T WHERE K = 1":   AggMin,
		"SELECT max(P) FROM T WHERE K = 1":   AggMax,
	}
	for src, want := range cases {
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if s.Agg != want {
			t.Errorf("%s: agg = %v, want %v", src, s.Agg, want)
		}
	}
}

func TestParseInsert(t *testing.T) {
	s, err := Parse("INSERT INTO T VALUES (7, 'x', -3)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != StmtInsert || len(s.Values) != 3 {
		t.Fatalf("stmt = %+v", s)
	}
	if s.Values[0].Int() != 7 || s.Values[1].Str() != "x" || s.Values[2].Int() != -3 {
		t.Fatalf("values = %v", s.Values)
	}
}

func TestParseStringEscapes(t *testing.T) {
	s, err := Parse("SELECT * FROM T WHERE K = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if s.Where.Value.Str() != "it's" {
		t.Fatalf("value = %q", s.Where.Value.Str())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE T",
		"SELECT FROM T WHERE K = 1",
		"SELECT * FROM T",                                // missing WHERE
		"SELECT * FROM T WHERE K",                        // missing operator
		"SELECT * FROM T WHERE K = ",                     // missing literal
		"SELECT * FROM T WHERE K BETWEEN 1",              // missing AND
		"SELECT SUM(*) FROM T WHERE K = 1",               // SUM(*) invalid
		"INSERT INTO T VALUES 1",                         // missing parens
		"INSERT INTO T VALUES (1",                        // unterminated
		"SELECT * FROM T WHERE K = 'unclosed",            // unterminated string
		"SELECT * FROM T WHERE K = 1 garbage",            // trailing
		"SELECT * FROM T WHERE K = 99999999999999999999", // overflow
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func testDB(t *testing.T) *DB {
	t.Helper()
	seed := uint64(31)
	client, err := repro.NewClient(repro.Config{
		MasterKey: []byte("sql test"),
		Attr:      "EId",
		Seed:      &seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	emp := workload.Employee()
	if err := client.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	deptIdx, _ := workload.EmployeeSchema.ColumnIndex("Dept")
	sens := func(tp relation.Tuple) bool { return tp.Values[deptIdx].Str() == "Defense" }
	return NewDB(client, workload.EmployeeSchema, sens, emp.Len())
}

func TestExecSelect(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec("SELECT FirstName, Dept FROM Employee WHERE EId = 'E259'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if row[0] != "John" {
			t.Errorf("row = %v", row)
		}
	}
}

func TestExecSelectStar(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec("SELECT * FROM Employee WHERE EId = 'E101'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 6 || len(res.Rows) != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestExecAggregate(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec("SELECT COUNT(*) FROM Employee WHERE EId = 'E152'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate == nil || *res.Aggregate != 2 {
		t.Fatalf("count = %+v", res)
	}
	res, err = db.Exec("SELECT MAX(Office) FROM Employee WHERE EId = 'E259'")
	if err != nil {
		t.Fatal(err)
	}
	if *res.Aggregate != 6 {
		t.Fatalf("max = %d", *res.Aggregate)
	}
}

func TestExecInsertThenSelect(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec("INSERT INTO Employee VALUES ('E900', 'Zoe', 'Quinn', 900, 3, 'Design')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 {
		t.Fatalf("inserted = %d", res.Inserted)
	}
	sel, err := db.Exec("SELECT LastName FROM Employee WHERE EId = 'E900'")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Rows) != 1 || sel.Rows[0][0] != "Quinn" {
		t.Fatalf("rows = %v", sel.Rows)
	}
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"SELECT * FROM Nope WHERE EId = 'E101'",
		"SELECT Missing FROM Employee WHERE EId = 'E101'",
		"SELECT * FROM Employee WHERE Missing = 'E101'",
		"INSERT INTO Employee VALUES (1)",                             // arity
		"INSERT INTO Employee VALUES (1, 2, 3, 4, 5, 6)",              // types
		"SELECT SUM(FirstName) FROM Employee WHERE EId = 'E101'",      // string sum
		"SELECT COUNT(*) FROM Employee WHERE EId BETWEEN 'a' AND 'b'", // agg over range
	}
	for _, src := range bad {
		if _, err := db.Exec(src); err == nil {
			t.Errorf("Exec(%q) succeeded", src)
		}
	}
}
