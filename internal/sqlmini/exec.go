package sqlmini

import (
	"fmt"
	"strings"

	"repro"
	"repro/internal/relation"
)

// DB binds the SQL front-end to a QB client over one outsourced relation.
type DB struct {
	client    *repro.Client
	schema    relation.Schema
	sensitive func(relation.Tuple) bool
	nextID    int
}

// NewDB wraps an already-outsourced client. schema is the relation's
// schema (for projection and insert validation); sensitive classifies
// inserted tuples; nextID seeds IDs for inserted rows.
func NewDB(client *repro.Client, schema relation.Schema, sensitive func(relation.Tuple) bool, nextID int) *DB {
	return &DB{client: client, schema: schema, sensitive: sensitive, nextID: nextID}
}

// Result is the outcome of one statement.
type Result struct {
	// Columns are the output column names (empty for INSERT).
	Columns []string
	// Rows are the output rows as strings.
	Rows [][]string
	// Aggregate holds the scalar for aggregate queries.
	Aggregate *int64
	// Inserted counts inserted tuples.
	Inserted int
}

// Exec parses and executes one statement.
func (db *DB) Exec(stmt string) (*Result, error) {
	s, err := Parse(stmt)
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(s.Table, db.schema.Name) {
		return nil, fmt.Errorf("sqlmini: unknown table %q (have %q)", s.Table, db.schema.Name)
	}
	switch s.Kind {
	case StmtSelect:
		return db.execSelect(s)
	case StmtInsert:
		return db.execInsert(s)
	default:
		return nil, fmt.Errorf("sqlmini: unsupported statement")
	}
}

func (db *DB) execSelect(s *Stmt) (*Result, error) {
	// The predicate must target the searchable attribute: QB bins exist
	// for that attribute only (multi-attribute support uses one client per
	// attribute).
	if _, ok := db.schema.ColumnIndex(s.Where.Attr); !ok {
		return nil, fmt.Errorf("sqlmini: unknown column %q", s.Where.Attr)
	}

	if s.Agg != AggNone {
		if s.Where.Op != OpEq {
			return nil, fmt.Errorf("sqlmini: aggregates support only equality predicates")
		}
		col := s.AggCol
		if s.Agg == AggCount && col == "" {
			col = s.Where.Attr
		}
		v, err := db.client.QueryAggregate(s.Where.Value, col, aggOp(s.Agg))
		if err != nil {
			return nil, err
		}
		return &Result{Columns: []string{aggName(s.Agg, col)}, Aggregate: &v,
			Rows: [][]string{{fmt.Sprintf("%d", v)}}}, nil
	}

	var tuples []relation.Tuple
	var err error
	switch s.Where.Op {
	case OpEq:
		tuples, err = db.client.Query(s.Where.Value)
	case OpBetween:
		tuples, err = db.client.QueryRange(s.Where.Value, s.Where.Hi)
	}
	if err != nil {
		return nil, err
	}

	cols := s.Columns
	idx := make([]int, 0, len(cols))
	if cols == nil {
		for i, c := range db.schema.Columns {
			cols = append(cols, c.Name)
			idx = append(idx, i)
		}
	} else {
		for _, c := range cols {
			i, ok := db.schema.ColumnIndex(c)
			if !ok {
				return nil, fmt.Errorf("sqlmini: unknown column %q", c)
			}
			idx = append(idx, i)
		}
	}
	res := &Result{Columns: cols}
	for _, t := range tuples {
		row := make([]string, len(idx))
		for i, ci := range idx {
			row[i] = t.Values[ci].String()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (db *DB) execInsert(s *Stmt) (*Result, error) {
	if err := db.schema.Check(s.Values); err != nil {
		return nil, err
	}
	t := relation.Tuple{ID: db.nextID, Values: s.Values}
	db.nextID++
	if err := db.client.Insert(t, db.sensitive(t)); err != nil {
		return nil, err
	}
	return &Result{Inserted: 1}, nil
}

func aggOp(a AggKind) repro.AggOp {
	switch a {
	case AggSum:
		return repro.AggSum
	case AggMin:
		return repro.AggMin
	case AggMax:
		return repro.AggMax
	default:
		return repro.AggCount
	}
}

func aggName(a AggKind, col string) string {
	switch a {
	case AggSum:
		return "SUM(" + col + ")"
	case AggMin:
		return "MIN(" + col + ")"
	case AggMax:
		return "MAX(" + col + ")"
	default:
		return "COUNT(*)"
	}
}
