package storage

import (
	"reflect"
	"testing"

	"repro/internal/relation"
)

func genRelation(t *testing.T, n int) *relation.Relation {
	t.Helper()
	s := relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
		relation.Column{Name: "P", Kind: relation.KindString},
	)
	r := relation.New(s)
	for i := 0; i < n; i++ {
		r.MustInsert(relation.Int(int64(i%10)), relation.Str("p"))
	}
	return r
}

func TestPlainStoreSearch(t *testing.T) {
	ps, err := NewPlainStore(genRelation(t, 50), "K")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 50 || ps.DistinctValues() != 10 {
		t.Fatalf("Len=%d Distinct=%d", ps.Len(), ps.DistinctValues())
	}
	got := ps.Search([]relation.Value{relation.Int(3), relation.Int(7)})
	if len(got) != 10 {
		t.Fatalf("Search returned %d tuples", len(got))
	}
	for _, tp := range got {
		k := tp.Values[0].Int()
		if k != 3 && k != 7 {
			t.Errorf("stray tuple with K=%d", k)
		}
	}
	if got := ps.Search([]relation.Value{relation.Int(99)}); len(got) != 0 {
		t.Errorf("absent value returned %d tuples", len(got))
	}
}

func TestPlainStoreRange(t *testing.T) {
	ps, err := NewPlainStore(genRelation(t, 50), "K")
	if err != nil {
		t.Fatal(err)
	}
	got := ps.SearchRange(relation.Int(2), relation.Int(4))
	if len(got) != 15 {
		t.Fatalf("range returned %d tuples, want 15", len(got))
	}
}

func TestPlainStoreInsert(t *testing.T) {
	ps, err := NewPlainStore(genRelation(t, 10), "K")
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Insert(relation.Tuple{ID: 100, Values: []relation.Value{relation.Int(42), relation.Str("q")}}); err != nil {
		t.Fatal(err)
	}
	got := ps.Search([]relation.Value{relation.Int(42)})
	if len(got) != 1 || got[0].ID != 100 {
		t.Fatalf("insert not searchable: %v", got)
	}
	gotR := ps.SearchRange(relation.Int(42), relation.Int(42))
	if len(gotR) != 1 {
		t.Fatalf("insert not range-searchable: %v", gotR)
	}
}

func TestPlainStoreBadColumn(t *testing.T) {
	if _, err := NewPlainStore(genRelation(t, 1), "missing"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestEncryptedStore(t *testing.T) {
	es := NewEncryptedStore()
	a0 := es.Add([]byte("ct0"), []byte("attr0"), nil)
	a1 := es.Add([]byte("ct1"), []byte("attr1"), []byte("tokA"))
	a2 := es.Add([]byte("ct2"), []byte("attr2"), []byte("tokA"))
	if a0 != 0 || a1 != 1 || a2 != 2 || es.Len() != 3 {
		t.Fatalf("addresses %d,%d,%d len %d", a0, a1, a2, es.Len())
	}
	col := es.AttrColumn()
	if len(col) != 3 || string(col[2].AttrCT) != "attr2" || col[2].TupleCT != nil {
		t.Fatalf("AttrColumn = %+v", col)
	}
	rows, err := es.Fetch([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if string(rows[0].TupleCT) != "ct2" || string(rows[1].TupleCT) != "ct0" {
		t.Fatalf("Fetch = %+v", rows)
	}
	if _, err := es.Fetch([]int{5}); err == nil {
		t.Error("out-of-range fetch succeeded")
	}
	if got := es.LookupToken([]byte("tokA")); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("LookupToken = %v", got)
	}
	if es.LookupToken([]byte("none")) != nil {
		t.Error("absent token returned addresses")
	}
}
