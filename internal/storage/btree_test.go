package storage

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestBTreeInsertLookup(t *testing.T) {
	bt := NewBTree(2) // tiny degree to force many splits
	for i := 0; i < 100; i++ {
		bt.Insert(relation.Int(int64(i%25)), i)
	}
	if bt.Len() != 25 {
		t.Fatalf("Len = %d, want 25", bt.Len())
	}
	for k := 0; k < 25; k++ {
		got := bt.Lookup(relation.Int(int64(k)))
		if len(got) != 4 {
			t.Fatalf("Lookup(%d) = %v", k, got)
		}
	}
	if bt.Lookup(relation.Int(999)) != nil {
		t.Error("lookup of absent key returned postings")
	}
}

func TestBTreeKeysSorted(t *testing.T) {
	bt := NewBTree(3)
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, v := range perm {
		bt.Insert(relation.Int(int64(v)), v)
	}
	keys := bt.Keys()
	if len(keys) != 500 {
		t.Fatalf("Keys() returned %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if !keys[i-1].Less(keys[i]) {
			t.Fatalf("keys out of order at %d: %v >= %v", i, keys[i-1], keys[i])
		}
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree(2)
	for i := 0; i < 50; i += 2 { // even keys only
		bt.Insert(relation.Int(int64(i)), i)
	}
	var got []int64
	bt.Range(relation.Int(10), relation.Int(20), func(v relation.Value, p []int) bool {
		got = append(got, v.Int())
		return true
	})
	want := []int64{10, 12, 14, 16, 18, 20}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Range = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	bt.Range(relation.Int(0), relation.Int(48), func(relation.Value, []int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d keys", n)
	}
	// Empty range.
	bt.Range(relation.Int(11), relation.Int(11), func(v relation.Value, _ []int) bool {
		t.Errorf("unexpected key %v in empty range", v)
		return true
	})
}

func TestBTreeRangeMatchesNaiveProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(300)
			keys := make([]int64, n)
			for i := range keys {
				keys[i] = int64(r.Intn(100))
			}
			args[0] = reflect.ValueOf(keys)
			args[1] = reflect.ValueOf(int64(r.Intn(100)))
			args[2] = reflect.ValueOf(int64(r.Intn(100)))
		},
	}
	prop := func(keys []int64, a, b int64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		bt := NewBTree(2)
		for i, k := range keys {
			bt.Insert(relation.Int(k), i)
		}
		var got []int
		bt.Range(relation.Int(lo), relation.Int(hi), func(_ relation.Value, p []int) bool {
			got = append(got, p...)
			return true
		})
		var want []int
		for i, k := range keys {
			if k >= lo && k <= hi {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		sort.Ints(want)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHashIndex(t *testing.T) {
	h := NewHashIndex()
	h.Add(relation.Int(1), 0)
	h.Add(relation.Int(1), 5)
	h.Add(relation.Str("1"), 9)
	if got := h.Lookup(relation.Int(1)); !reflect.DeepEqual(got, []int{0, 5}) {
		t.Errorf("Lookup(Int 1) = %v", got)
	}
	if got := h.Lookup(relation.Str("1")); !reflect.DeepEqual(got, []int{9}) {
		t.Errorf("Lookup(Str 1) = %v", got)
	}
	if h.Lookup(relation.Int(2)) != nil {
		t.Error("absent key returned postings")
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}
}
