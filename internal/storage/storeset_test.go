package storage

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestStoreSetGetOrCreateRace: concurrent first-touch of the same
// namespace must converge on one *Store (run under -race).
func TestStoreSetGetOrCreateRace(t *testing.T) {
	ss := NewStoreSet()
	const goroutines = 16
	got := make([]*Store, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = ss.GetOrCreate("tenant")
			ss.GetOrCreate(fmt.Sprintf("other-%d", g%4))
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d got a different store for the same namespace", g)
		}
	}
	if n := ss.Len(); n != 5 { // "tenant" + other-0..3
		t.Fatalf("Len = %d, want 5", n)
	}
	names := ss.Names()
	if len(names) != 5 || names[4] != "tenant" {
		t.Fatalf("Names = %v", names)
	}
}

// TestStoreIsolation: two namespaces' plain and encrypted sides never
// bleed into each other.
func TestStoreIsolation(t *testing.T) {
	ss := NewStoreSet()
	a, b := ss.GetOrCreate("a"), ss.GetOrCreate("b")

	a.Enc().Add([]byte("a-ct"), nil, []byte("tok"))
	if n := b.Enc().Len(); n != 0 {
		t.Fatalf("store b sees %d rows from store a", n)
	}
	if got := b.Enc().LookupToken([]byte("tok")); len(got) != 0 {
		t.Fatalf("store b resolved store a's token: %v", got)
	}

	ps, err := NewPlainStore(genRelation(t, 10), "K")
	if err != nil {
		t.Fatal(err)
	}
	a.SetPlain(ps)
	if b.Plain() != nil {
		t.Fatal("store b sees store a's plain relation")
	}
	plain, enc, release := a.ReadView()
	defer release()
	if plain == nil || plain.Len() != 10 {
		t.Fatalf("store a plain view = %v", plain)
	}
	if enc.Len() != 1 {
		t.Fatalf("store a enc view has %d rows", enc.Len())
	}
}

// TestEncStoreShardedReads: the lock-free read paths return consistent
// data while writers append concurrently — addresses handed out before a
// read stay valid, LookupToken results are always fetchable, and a
// snapshot never shows a torn row. Run under -race this exercises the
// snapshot publication and token striping.
func TestEncStoreShardedReads(t *testing.T) {
	s := NewEncryptedStore()
	const seed = 64
	for i := 0; i < seed; i++ {
		s.Add([]byte(fmt.Sprintf("ct-%04d", i)), []byte("a"), []byte(fmt.Sprintf("tok-%d", i%8)))
	}

	var wg sync.WaitGroup
	fail := make(chan error, 32)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Errorf(format, args...):
		default:
		}
	}
	// Writers keep appending.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				addr := s.Add([]byte("new"), nil, []byte(fmt.Sprintf("tok-%d", i%8)))
				if addr < seed {
					report("writer address %d collides with seeded range", addr)
					return
				}
			}
		}(w)
	}
	// Readers check every path against the seeded prefix.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				addr := (r*53 + i) % seed
				rows, err := s.Fetch([]int{addr})
				if err != nil {
					report("fetch(%d): %v", addr, err)
					return
				}
				if want := fmt.Sprintf("ct-%04d", addr); string(rows[0].TupleCT) != want {
					report("fetch(%d) = %q, want %q", addr, rows[0].TupleCT, want)
					return
				}
				batches, err := s.FetchBatch([][]int{{addr}, {}})
				if err != nil || len(batches) != 2 || len(batches[0]) != 1 {
					report("fetchBatch(%d): %v %v", addr, batches, err)
					return
				}
				// Every address the token index returns must be fetchable.
				for _, a := range s.LookupToken([]byte(fmt.Sprintf("tok-%d", i%8))) {
					if _, err := s.Fetch([]int{a}); err != nil {
						report("token addr %d not fetchable: %v", a, err)
						return
					}
				}
				if n := s.Len(); n < seed {
					report("Len shrank to %d", n)
					return
				}
				if col := s.AttrColumn(); len(col) < seed || col[addr].Addr != addr {
					report("AttrColumn misaligned at %d", addr)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}

	// Quiesced: full accounting.
	if n := s.Len(); n != seed+400 {
		t.Fatalf("Len = %d, want %d", n, seed+400)
	}
	if got := s.LookupToken([]byte("tok-0")); len(got) == 0 {
		t.Fatal("token index lost tok-0")
	}
	if got := s.LookupToken([]byte("absent")); got != nil {
		t.Fatalf("absent token = %v", got)
	}
}

// TestEncStoreRowsSnapshot: Rows is a point-in-time snapshot — appends
// after the call are invisible through it.
func TestEncStoreRowsSnapshot(t *testing.T) {
	s := NewEncryptedStore()
	s.Add([]byte("a"), nil, nil)
	snap := s.Rows()
	s.Add([]byte("b"), nil, nil)
	if len(snap) != 1 {
		t.Fatalf("snapshot grew to %d rows", len(snap))
	}
	if got := s.Rows(); len(got) != 2 {
		t.Fatalf("fresh Rows = %d", len(got))
	}
	want := []int{0, 1}
	var addrs []int
	for _, r := range s.Rows() {
		addrs = append(addrs, r.Addr)
	}
	if !reflect.DeepEqual(addrs, want) {
		t.Fatalf("addrs = %v", addrs)
	}
}
