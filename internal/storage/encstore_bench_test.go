package storage

import (
	"fmt"
	"sync"
	"testing"
)

// encReader is the read surface both implementations share.
type encReader interface {
	Fetch(addrs []int) ([]EncRow, error)
	LookupToken(tok []byte) []int
	Len() int
}

// rwmutexStore replicates the pre-shard EncryptedStore (one RWMutex over
// rows and token index) as the benchmark baseline, so the before/after of
// the sharded read path stays measurable in one run.
type rwmutexStore struct {
	mu       sync.RWMutex
	rows     []EncRow
	tokenIdx map[string][]int
}

func newRWMutexStore() *rwmutexStore {
	return &rwmutexStore{tokenIdx: make(map[string][]int)}
}

func (s *rwmutexStore) Add(tupleCT, attrCT, token []byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr := len(s.rows)
	s.rows = append(s.rows, EncRow{Addr: addr, TupleCT: tupleCT, AttrCT: attrCT, Token: token})
	if token != nil {
		k := string(token)
		s.tokenIdx[k] = append(s.tokenIdx[k], addr)
	}
	return addr
}

func (s *rwmutexStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rows)
}

func (s *rwmutexStore) Fetch(addrs []int) ([]EncRow, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]EncRow, 0, len(addrs))
	for _, a := range addrs {
		if a < 0 || a >= len(s.rows) {
			return nil, fmt.Errorf("storage: address %d out of range [0,%d)", a, len(s.rows))
		}
		out = append(out, s.rows[a])
	}
	return out, nil
}

func (s *rwmutexStore) LookupToken(tok []byte) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tokenIdx[string(tok)]
}

// BenchmarkEncStoreParallelReads measures the encrypted store's hot read
// path — one Fetch of 8 addresses plus one LookupToken and one Len per
// iteration — under RunParallel, comparing the sharded/lock-free store
// against the pre-shard single-RWMutex baseline. This is the store-level
// view of ROADMAP open item 1 (parallel searches contending on one
// RWMutex); the end-to-end effect on QueryBatch appears at high worker
// counts on multi-core hosts. Numbers live in docs/BENCHMARKS.md.
func BenchmarkEncStoreParallelReads(b *testing.B) {
	const rows = 4096
	seedStore := func(add func(t, a, tok []byte) int) {
		for i := 0; i < rows; i++ {
			add([]byte("tuple-ct"), []byte("attr-ct"), []byte(fmt.Sprintf("tok-%d", i%64)))
		}
	}
	run := func(b *testing.B, s encReader) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			addrs := make([]int, 8)
			i := 0
			for pb.Next() {
				for j := range addrs {
					addrs[j] = (i*97 + j*31) % rows
				}
				if _, err := s.Fetch(addrs); err != nil {
					b.Fatal(err)
				}
				_ = s.LookupToken([]byte(fmt.Sprintf("tok-%d", i%64)))
				_ = s.Len()
				i++
			}
		})
	}
	b.Run("sharded", func(b *testing.B) {
		s := NewEncryptedStore()
		seedStore(s.Add)
		run(b, s)
	})
	b.Run("rwmutex-baseline", func(b *testing.B) {
		s := newRWMutexStore()
		seedStore(s.Add)
		run(b, s)
	})
}
