package storage

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/relation"
)

// ErrLenMismatch reports a conditional insert whose expected tuple count
// no longer matched; nothing was applied. Callers distinguish it from a
// schema rejection with errors.Is.
var ErrLenMismatch = errors.New("storage: relation length mismatch")

// PlainStore is the cloud's clear-text store for the non-sensitive relation
// Rns. It answers selection and range queries over the searchable attribute
// using a hash index and a B+-tree, exactly as a public cloud database
// would. It is safe for concurrent use: searches share a read lock and run
// in parallel, inserts take the write lock.
type PlainStore struct {
	mu      sync.RWMutex
	rel     *relation.Relation
	attr    string
	attrIdx int
	hash    *HashIndex
	tree    *BTree
}

// NewPlainStore indexes rel on the searchable attribute attr.
func NewPlainStore(rel *relation.Relation, attr string) (*PlainStore, error) {
	ci, ok := rel.Schema.ColumnIndex(attr)
	if !ok {
		return nil, fmt.Errorf("storage: relation %q has no column %q", rel.Schema.Name, attr)
	}
	s := &PlainStore{
		rel:     rel,
		attr:    attr,
		attrIdx: ci,
		hash:    NewHashIndex(),
		tree:    NewBTree(16),
	}
	for pos, t := range rel.Tuples {
		s.hash.Add(t.Values[ci], pos)
		s.tree.Insert(t.Values[ci], pos)
	}
	return s, nil
}

// Insert appends a tuple to the store and indexes it.
func (s *PlainStore) Insert(t relation.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.rel.Append(t); err != nil {
		return err
	}
	pos := s.rel.Len() - 1
	v := t.Values[s.attrIdx]
	s.hash.Add(v, pos)
	s.tree.Insert(v, pos)
	return nil
}

// InsertIfLen appends t only if the relation currently holds exactly
// expectedLen tuples — the clear-text sibling of
// EncryptedStore.AppendIfLen, and the reason a replicated writer's insert
// cannot double-apply against anti-entropy repair: if a wholesale restore
// (or another writer) moved the count between the writer learning it and
// the insert arriving, the CAS fails cleanly with ErrLenMismatch instead
// of appending a tuple the restored state may already contain. Returns
// the relation's current tuple count either way.
func (s *PlainStore) InsertIfLen(t relation.Tuple, expectedLen int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.rel.Len(); n != expectedLen {
		return n, fmt.Errorf("%w: relation holds %d tuples, caller expected %d", ErrLenMismatch, n, expectedLen)
	}
	if err := s.rel.Append(t); err != nil {
		return s.rel.Len(), err
	}
	pos := s.rel.Len() - 1
	v := t.Values[s.attrIdx]
	s.hash.Add(v, pos)
	s.tree.Insert(v, pos)
	return s.rel.Len(), nil
}

// Len returns the number of stored tuples.
func (s *PlainStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rel.Len()
}

// DistinctValues returns the number of distinct searchable values.
func (s *PlainStore) DistinctValues() int { return s.hash.Len() }

// Search returns every tuple whose searchable attribute is one of values —
// the cloud-side execution of q(Wns)(Rns).
func (s *PlainStore) Search(values []relation.Value) []relation.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Two passes: size first, then fill. The result is one exact
	// allocation instead of append-doubling — this runs once per query on
	// the server and its growth churn was visible in the remote profile.
	n := 0
	for _, v := range values {
		n += len(s.hash.Lookup(v))
	}
	if n == 0 {
		return nil
	}
	out := make([]relation.Tuple, 0, n)
	for _, v := range values {
		for _, pos := range s.hash.Lookup(v) {
			out = append(out, s.rel.Tuples[pos])
		}
	}
	return out
}

// SearchRange returns every tuple with lo <= attr <= hi via the B+-tree.
func (s *PlainStore) SearchRange(lo, hi relation.Value) []relation.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []relation.Tuple
	s.tree.Range(lo, hi, func(_ relation.Value, positions []int) bool {
		for _, pos := range positions {
			out = append(out, s.rel.Tuples[pos])
		}
		return true
	})
	return out
}

// SnapshotTuples returns the schema and a copy of the tuple slice under
// the read lock — safe against concurrent inserts, unlike Relation. The
// tuples themselves are never mutated after append, so sharing them is
// safe; only the slice header must be copied.
func (s *PlainStore) SnapshotTuples() (relation.Schema, []relation.Tuple) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tuples := make([]relation.Tuple, len(s.rel.Tuples))
	copy(tuples, s.rel.Tuples)
	return s.rel.Schema, tuples
}

// Relation exposes the underlying relation; the adversary is allowed to read
// it in full ("the adversary has full access to all the non-sensitive
// data"). The caller must not read it while inserts are in flight.
func (s *PlainStore) Relation() *relation.Relation { return s.rel }

// Attr returns the searchable attribute name.
func (s *PlainStore) Attr() string { return s.attr }
