package storage

import (
	"sort"
	"sync"
)

// Store is one named relation's complete cloud-side state: the clear-text
// store for its non-sensitive partition and the encrypted store for its
// sensitive partition. A multi-tenant cloud holds one Store per
// namespace, each independently keyed by its owner.
//
// The per-store lock guards the plain pointer only: installing (or
// replacing) the clear-text store is exclusive against every operation in
// flight on the same store, while operations on other stores proceed
// untouched. The encrypted store pointer is fixed for the Store's
// lifetime and synchronises internally.
type Store struct {
	mu    sync.RWMutex // guards the plain pointer, not the stores
	plain *PlainStore
	enc   *EncryptedStore
}

// NewStore returns an empty store (no relation loaded, empty encrypted
// side).
func NewStore() *Store {
	return &Store{enc: NewEncryptedStore()}
}

// SetPlain installs or replaces the clear-text store. It takes the
// store's write lock, so it is exclusive against every ReadView in
// flight: an operation can never land in a relation that a concurrent
// load has already swapped out.
func (s *Store) SetPlain(ps *PlainStore) {
	s.mu.Lock()
	s.plain = ps
	s.mu.Unlock()
}

// ReadView returns the current clear-text store (nil before any load) and
// the encrypted store under the store's read lock. The caller must invoke
// release when the operation completes; reads on the same store run in
// parallel, a SetPlain waits for them.
func (s *Store) ReadView() (plain *PlainStore, enc *EncryptedStore, release func()) {
	s.mu.RLock()
	return s.plain, s.enc, s.mu.RUnlock
}

// Plain returns the current clear-text store without retaining the lock —
// for stats and snapshots taken while the store set is quiesced.
func (s *Store) Plain() *PlainStore {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.plain
}

// Enc returns the encrypted store. The pointer never changes for the
// Store's lifetime, so no lock is needed.
func (s *Store) Enc() *EncryptedStore { return s.enc }

// StoreSet is a race-safe registry of named stores — the state of a
// multi-tenant cloud. Lookup and creation are atomic: two clients
// touching the same new namespace concurrently get the same *Store.
type StoreSet struct {
	mu sync.RWMutex
	m  map[string]*Store
}

// NewStoreSet returns an empty registry.
func NewStoreSet() *StoreSet {
	return &StoreSet{m: make(map[string]*Store)}
}

// Get returns the named store, if it exists.
func (ss *StoreSet) Get(name string) (*Store, bool) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	st, ok := ss.m[name]
	return st, ok
}

// GetOrCreate returns the named store, creating it empty on first use.
func (ss *StoreSet) GetOrCreate(name string) *Store {
	ss.mu.RLock()
	st, ok := ss.m[name]
	ss.mu.RUnlock()
	if ok {
		return st
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if st, ok := ss.m[name]; ok {
		return st
	}
	st = NewStore()
	ss.m[name] = st
	return st
}

// Set installs a store under name, replacing any existing one. Restore
// paths use it; callers must ensure no operations are in flight on the
// replaced store.
func (ss *StoreSet) Set(name string, st *Store) {
	ss.mu.Lock()
	ss.m[name] = st
	ss.mu.Unlock()
}

// Reset drops every store. Restore paths use it under the same quiescence
// requirement as Set.
func (ss *StoreSet) Reset() {
	ss.mu.Lock()
	ss.m = make(map[string]*Store)
	ss.mu.Unlock()
}

// Names returns the registered namespaces in sorted order.
func (ss *StoreSet) Names() []string {
	ss.mu.RLock()
	out := make([]string, 0, len(ss.m))
	for name := range ss.m {
		out = append(out, name)
	}
	ss.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len reports the number of registered namespaces.
func (ss *StoreSet) Len() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return len(ss.m)
}
