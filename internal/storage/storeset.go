package storage

import (
	"sort"
	"sync"
)

// Store is one named relation's complete cloud-side state: the clear-text
// store for its non-sensitive partition and the encrypted store for its
// sensitive partition. A multi-tenant cloud holds one Store per
// namespace, each independently keyed by its owner.
//
// The per-store lock guards the plain pointer only: installing (or
// replacing) the clear-text store is exclusive against every operation in
// flight on the same store, while operations on other stores proceed
// untouched. The encrypted store pointer is fixed for the Store's
// lifetime and synchronises internally.
type Store struct {
	mu    sync.RWMutex // guards the plain pointer, not the stores
	plain *PlainStore
	enc   *EncryptedStore

	// ownerMu guards ownerHash: the hash of the owner's control-plane
	// token, claimed by the first write to the namespace. The cloud never
	// sees the token itself outside an admin request; at rest it keeps only
	// the hash, so a stolen snapshot does not confer admin rights.
	ownerMu   sync.Mutex
	ownerHash []byte
}

// NewStore returns an empty store (no relation loaded, empty encrypted
// side).
func NewStore() *Store {
	return &Store{enc: NewEncryptedStore()}
}

// SetPlain installs or replaces the clear-text store. It takes the
// store's write lock, so it is exclusive against every ReadView in
// flight: an operation can never land in a relation that a concurrent
// load has already swapped out.
func (s *Store) SetPlain(ps *PlainStore) {
	s.mu.Lock()
	s.plain = ps
	s.mu.Unlock()
}

// ReadView returns the current clear-text store (nil before any load) and
// the encrypted store under the store's read lock. The caller must invoke
// release when the operation completes; reads on the same store run in
// parallel, a SetPlain waits for them.
func (s *Store) ReadView() (plain *PlainStore, enc *EncryptedStore, release func()) {
	s.mu.RLock()
	return s.plain, s.enc, s.mu.RUnlock
}

// Plain returns the current clear-text store without retaining the lock —
// for stats and snapshots taken while the store set is quiesced.
func (s *Store) Plain() *PlainStore {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.plain
}

// Enc returns the encrypted store. The pointer never changes for the
// Store's lifetime, so no lock is needed.
func (s *Store) Enc() *EncryptedStore { return s.enc }

// ClaimOwner records hash as the namespace's owner-token hash if none is
// registered yet and reports whether the claim took effect. Later claims
// with a different hash are ignored: the first writer to a namespace is
// its owner until the namespace is dropped.
func (s *Store) ClaimOwner(hash []byte) bool {
	if len(hash) == 0 {
		return false
	}
	s.ownerMu.Lock()
	defer s.ownerMu.Unlock()
	if s.ownerHash != nil {
		return false
	}
	s.ownerHash = append([]byte(nil), hash...)
	return true
}

// OwnerHash returns the registered owner-token hash (nil when the
// namespace has never been written with a token).
func (s *Store) OwnerHash() []byte {
	s.ownerMu.Lock()
	defer s.ownerMu.Unlock()
	return s.ownerHash
}

// Compact rebuilds the encrypted side into exactly-sized allocations (see
// EncryptedStore.Compact) under the store's write lock, so it is exclusive
// against every in-flight operation on the same namespace — the same
// quiescence SetPlain relies on — and returns the retained row count.
func (s *Store) Compact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Compact()
}

// StoreSet is a race-safe registry of named stores — the state of a
// multi-tenant cloud. Lookup and creation are atomic: two clients
// touching the same new namespace concurrently get the same *Store.
type StoreSet struct {
	mu sync.RWMutex
	m  map[string]*Store
}

// NewStoreSet returns an empty registry.
func NewStoreSet() *StoreSet {
	return &StoreSet{m: make(map[string]*Store)}
}

// Get returns the named store, if it exists.
func (ss *StoreSet) Get(name string) (*Store, bool) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	st, ok := ss.m[name]
	return st, ok
}

// GetOrCreate returns the named store, creating it empty on first use.
func (ss *StoreSet) GetOrCreate(name string) *Store {
	ss.mu.RLock()
	st, ok := ss.m[name]
	ss.mu.RUnlock()
	if ok {
		return st
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if st, ok := ss.m[name]; ok {
		return st
	}
	st = NewStore()
	ss.m[name] = st
	return st
}

// Set installs a store under name, replacing any existing one. Restore
// paths use it; callers must ensure no operations are in flight on the
// replaced store.
func (ss *StoreSet) Set(name string, st *Store) {
	ss.mu.Lock()
	ss.m[name] = st
	ss.mu.Unlock()
}

// Replace installs st under name and quiesces the store it displaced,
// exactly like Drop does: the replacement is published first, then the
// old store's write lock is taken and released, so by return every
// operation that was in flight on the displaced store has drained. An op
// racing past the swap lands in the orphaned store and its effect
// vanishes with it — the semantics of a ring-ordered replica restore.
func (ss *StoreSet) Replace(name string, st *Store) {
	ss.mu.Lock()
	old := ss.m[name]
	ss.m[name] = st
	ss.mu.Unlock()
	if old != nil {
		old.mu.Lock()
		old.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	}
}

// Drop removes the named store from the registry and reports whether it
// existed. The removal is published first — operations arriving after Drop
// returns (or racing past it) resolve to a fresh empty store on next
// touch — and then the dropped store's write lock is taken and released,
// so by the time Drop returns every operation that was in flight on the
// old store has drained and its memory is unreachable. An op that loses
// the race lands in the orphaned store and its effect vanishes with it,
// which is exactly the semantics of an owner-ordered destruction.
func (ss *StoreSet) Drop(name string) bool {
	ss.mu.Lock()
	st, ok := ss.m[name]
	if ok {
		delete(ss.m, name)
	}
	ss.mu.Unlock()
	if !ok {
		return false
	}
	// Quiesce: wait out readers still holding the dropped store's lock.
	st.mu.Lock()
	st.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	return true
}

// Reset drops every store. Restore paths use it under the same quiescence
// requirement as Set.
func (ss *StoreSet) Reset() {
	ss.mu.Lock()
	ss.m = make(map[string]*Store)
	ss.mu.Unlock()
}

// Names returns the registered namespaces in sorted order.
func (ss *StoreSet) Names() []string {
	ss.mu.RLock()
	out := make([]string, 0, len(ss.m))
	for name := range ss.m {
		out = append(out, name)
	}
	ss.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len reports the number of registered namespaces.
func (ss *StoreSet) Len() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return len(ss.m)
}
