package storage

import (
	"fmt"
	"sync"
)

// EncRow is one outsourced sensitive tuple as the cloud sees it: opaque
// ciphertexts plus (for cloud-side-indexable techniques only) a searchable
// token. Addr is the cloud-side address; the access-pattern leakage the
// paper discusses is precisely "which Addrs were returned".
type EncRow struct {
	Addr    int
	TupleCT []byte // probabilistic ciphertext of the encoded tuple
	AttrCT  []byte // probabilistic ciphertext of the searchable attribute value
	Token   []byte // deterministic/Arx token, nil for non-indexable techniques
}

// EncryptedStore holds the encrypted sensitive relation Rs at the cloud.
// It is safe for concurrent use: reads (column pulls, fetches, token
// lookups) share a read lock, uploads take the write lock. Rows are
// append-only, so addresses handed out by a read remain valid afterwards.
type EncryptedStore struct {
	mu       sync.RWMutex
	rows     []EncRow
	tokenIdx map[string][]int // token -> addresses, for indexable techniques
}

// NewEncryptedStore returns an empty store.
func NewEncryptedStore() *EncryptedStore {
	return &EncryptedStore{tokenIdx: make(map[string][]int)}
}

// Add appends a row, assigning its address, and indexes its token if any.
func (s *EncryptedStore) Add(tupleCT, attrCT, token []byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr := len(s.rows)
	s.rows = append(s.rows, EncRow{Addr: addr, TupleCT: tupleCT, AttrCT: attrCT, Token: token})
	if token != nil {
		k := string(token)
		s.tokenIdx[k] = append(s.tokenIdx[k], addr)
	}
	return addr
}

// Len returns the number of stored rows.
func (s *EncryptedStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rows)
}

// Rows exposes the stored rows; the honest-but-curious adversary sees these
// ciphertexts at rest. The returned slice is a snapshot: rows appended
// concurrently are not visible through it.
func (s *EncryptedStore) Rows() []EncRow {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rows
}

// AttrColumn returns the encrypted searchable-attribute column with
// addresses — the first round of the paper's non-indexable search ("retrieve
// the searching attribute of a sensitive relation at the DB owner side,
// decrypt, and search").
func (s *EncryptedStore) AttrColumn() []EncRow {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]EncRow, len(s.rows))
	for i, r := range s.rows {
		out[i] = EncRow{Addr: r.Addr, AttrCT: r.AttrCT}
	}
	return out
}

// Fetch returns the full rows at the given addresses — the second round.
func (s *EncryptedStore) Fetch(addrs []int) ([]EncRow, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]EncRow, 0, len(addrs))
	for _, a := range addrs {
		if a < 0 || a >= len(s.rows) {
			return nil, fmt.Errorf("storage: address %d out of range [0,%d)", a, len(s.rows))
		}
		out = append(out, s.rows[a])
	}
	return out, nil
}

// FetchBatch returns the full rows for each address list in addrBatches —
// the batched second round: one call (one wire round trip, when the store
// is remote) serves every query in a batch.
func (s *EncryptedStore) FetchBatch(addrBatches [][]int) ([][]EncRow, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]EncRow, len(addrBatches))
	for i, addrs := range addrBatches {
		rows := make([]EncRow, 0, len(addrs))
		for _, a := range addrs {
			if a < 0 || a >= len(s.rows) {
				return nil, fmt.Errorf("storage: address %d out of range [0,%d)", a, len(s.rows))
			}
			rows = append(rows, s.rows[a])
		}
		out[i] = rows
	}
	return out, nil
}

// LookupToken returns the addresses whose token equals tok (indexable
// techniques only).
func (s *EncryptedStore) LookupToken(tok []byte) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tokenIdx[string(tok)]
}
