package storage

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// EncRow is one outsourced sensitive tuple as the cloud sees it: opaque
// ciphertexts plus (for cloud-side-indexable techniques only) a searchable
// token. Addr is the cloud-side address; the access-pattern leakage the
// paper discusses is precisely "which Addrs were returned".
type EncRow struct {
	Addr    int
	TupleCT []byte // probabilistic ciphertext of the encoded tuple
	AttrCT  []byte // probabilistic ciphertext of the searchable attribute value
	Token   []byte // deterministic/Arx token, nil for non-indexable techniques
}

// EncVersion identifies a point in an EncryptedStore's write history.
// Epoch is a random nonzero instance identifier: two stores (or the same
// namespace before and after a snapshot restore, which can silently drop
// post-snapshot writes) never share an epoch, so a cache keyed by an old
// epoch can never be validated against rewritten addresses. N counts
// writes (Add, Compact) within the epoch. Within one epoch the row column
// is append-only and rows are immutable, so any state captured at
// (Epoch, have rows) extends to the present by fetching only rows[have:].
type EncVersion struct {
	Epoch uint64
	N     uint64
}

// newEpoch draws a random nonzero epoch. The zero epoch is reserved as
// "client holds no cache" and never matches a live store.
func newEpoch() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic("storage: epoch randomness unavailable: " + err.Error())
		}
		if e := binary.LittleEndian.Uint64(b[:]); e != 0 {
			return e
		}
	}
}

// tokenShards is the stripe count of the token index. 16 stripes keep the
// per-shard maps small and let concurrent LookupToken calls proceed
// without sharing a lock in the common case.
const tokenShards = 16

// tokenShard is one stripe of the token index: its own lock, its own map.
type tokenShard struct {
	mu sync.RWMutex
	m  map[string][]int // token -> addresses, append-only per key
}

// EncryptedStore holds the encrypted sensitive relation Rs at the cloud.
// It is safe for concurrent use and its read paths are built to scale
// with worker count:
//
//   - The row column is append-only and published through an atomic
//     snapshot pointer, so Fetch/FetchBatch/AttrColumn/Rows/Len never
//     take a lock at all — under a high-worker QueryBatch the readers
//     stop contending on a single RWMutex's reader count.
//   - The token index is striped across tokenShards locks, so parallel
//     LookupToken calls from different queries usually hit different
//     stripes.
//
// Only Add serialises (on the writer mutex plus the touched token
// stripe). Rows are append-only, so addresses handed out by a read remain
// valid afterwards, and a published snapshot never sees a row mutate
// beneath it.
type EncryptedStore struct {
	writeMu sync.Mutex // serialises Add: address assignment + append
	rows    []EncRow   // owned by Add; readers use snap

	// snap is the last published row slice. Appends that grow in place
	// write only beyond the published length, so a reader holding an
	// older snapshot never observes a torn row.
	snap atomic.Pointer[[]EncRow]

	tokens [tokenShards]tokenShard

	// epoch is fixed at construction; ver counts writes. Writers bump ver
	// only AFTER publishing the new snapshot AND indexing the row's token,
	// and readers load ver BEFORE probing either, so state observed at a
	// version is never fresher than that version vouches for: a client
	// that caches (rows, version) and later revalidates can at worst be
	// sent rows it already holds, never be told "unchanged" while rows it
	// lacks exist under that version; and a posting list looked up after
	// loading ver includes every write counted by it, so memoising the
	// list at that version can never capture a pre-write list under a
	// post-write version.
	epoch uint64
	ver   atomic.Uint64
}

// tokenSeed makes the stripe hash per-process (no cross-store coupling,
// no adversarially predictable stripes).
var tokenSeed = maphash.MakeSeed()

// NewEncryptedStore returns an empty store.
func NewEncryptedStore() *EncryptedStore {
	s := &EncryptedStore{epoch: newEpoch()}
	empty := []EncRow(nil)
	s.snap.Store(&empty)
	for i := range s.tokens {
		s.tokens[i].m = make(map[string][]int)
	}
	return s
}

func (s *EncryptedStore) shard(token []byte) *tokenShard {
	return &s.tokens[maphash.Bytes(tokenSeed, token)%tokenShards]
}

// Add appends a row, assigning its address, and indexes its token if any.
func (s *EncryptedStore) Add(tupleCT, attrCT, token []byte) int {
	s.writeMu.Lock()
	addr := len(s.rows)
	s.rows = append(s.rows, EncRow{Addr: addr, TupleCT: tupleCT, AttrCT: attrCT, Token: token})
	// Publish before indexing the token, so an address found through
	// LookupToken is always fetchable from the row snapshot.
	rows := s.rows
	s.snap.Store(&rows)
	if token != nil {
		sh := s.shard(token)
		k := string(token)
		sh.mu.Lock()
		sh.m[k] = append(sh.m[k], addr)
		sh.mu.Unlock()
	}
	// Bump the version only after BOTH the row snapshot and the token
	// index include this write. A reader that observes the new N therefore
	// sees the row (Version/AttrColumnSince can always fetch it) AND the
	// token (a cached search that pairs this version with a LookupToken
	// probe can never memoise a pre-write posting list under a post-write
	// version, which would serve stale results for as long as the version
	// stayed current).
	s.ver.Add(1)
	s.writeMu.Unlock()
	return addr
}

// snapshot returns the currently published rows; lock-free.
func (s *EncryptedStore) snapshot() []EncRow { return *s.snap.Load() }

// Len returns the number of stored rows.
func (s *EncryptedStore) Len() int { return len(s.snapshot()) }

// Rows exposes the stored rows; the honest-but-curious adversary sees these
// ciphertexts at rest. The returned slice is a snapshot: rows appended
// concurrently are not visible through it.
func (s *EncryptedStore) Rows() []EncRow { return s.snapshot() }

// AttrColumn returns the encrypted searchable-attribute column with
// addresses — the first round of the paper's non-indexable search ("retrieve
// the searching attribute of a sensitive relation at the DB owner side,
// decrypt, and search").
func (s *EncryptedStore) AttrColumn() []EncRow {
	rows := s.snapshot()
	out := make([]EncRow, len(rows))
	for i, r := range rows {
		out[i] = EncRow{Addr: r.Addr, AttrCT: r.AttrCT}
	}
	return out
}

// Fetch returns the full rows at the given addresses — the second round.
func (s *EncryptedStore) Fetch(addrs []int) ([]EncRow, error) {
	rows := s.snapshot()
	out := make([]EncRow, 0, len(addrs))
	for _, a := range addrs {
		if a < 0 || a >= len(rows) {
			return nil, fmt.Errorf("storage: address %d out of range [0,%d)", a, len(rows))
		}
		out = append(out, rows[a])
	}
	return out, nil
}

// FetchBatch returns the full rows for each address list in addrBatches —
// the batched second round: one call (one wire round trip, when the store
// is remote) serves every query in a batch. The whole batch reads one
// consistent snapshot.
func (s *EncryptedStore) FetchBatch(addrBatches [][]int) ([][]EncRow, error) {
	rows := s.snapshot()
	out := make([][]EncRow, len(addrBatches))
	for i, addrs := range addrBatches {
		set := make([]EncRow, 0, len(addrs))
		for _, a := range addrs {
			if a < 0 || a >= len(rows) {
				return nil, fmt.Errorf("storage: address %d out of range [0,%d)", a, len(rows))
			}
			set = append(set, rows[a])
		}
		out[i] = set
	}
	return out, nil
}

// Compact rebuilds the row column and the token index into exactly-sized
// allocations and returns the row count. The row column is append-only, so
// successive Adds leave up to 2x capacity slack in the snapshot slice and
// growth garbage in the stripe maps; a long-lived multi-tenant cloud
// reclaims it per namespace through the control plane's compact op.
// Addresses are preserved exactly — rows never move relative to their
// Addr — so owner-side metadata stays valid. Readers are lock-free and
// see either the old or the new snapshot, which hold identical content.
func (s *EncryptedStore) Compact() int {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	rows := make([]EncRow, len(s.rows))
	copy(rows, s.rows)
	s.rows = rows
	s.snap.Store(&rows)
	s.ver.Add(1)

	// Rebuild each stripe's map with exact-size buckets; per-stripe locks
	// keep concurrent LookupToken calls safe throughout.
	for i := range s.tokens {
		sh := &s.tokens[i]
		sh.mu.Lock()
		m := make(map[string][]int, len(sh.m))
		for k, addrs := range sh.m {
			m[k] = append(make([]int, 0, len(addrs)), addrs...)
		}
		sh.m = m
		sh.mu.Unlock()
	}
	return len(rows)
}

// LookupToken returns the addresses whose token equals tok (indexable
// techniques only). Only the stripe owning tok is locked.
func (s *EncryptedStore) LookupToken(tok []byte) []int {
	sh := s.shard(tok)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.m[string(tok)]
}

// EncVersion returns the store's current version. The error is always nil
// here; the signature matches the remote backends so owner-side caches can
// treat local and remote stores uniformly. The version is loaded before
// any snapshot a caller takes afterwards, so pairing this version with a
// later snapshot is conservative (see the field comment on ver).
func (s *EncryptedStore) EncVersion() (EncVersion, error) {
	return EncVersion{Epoch: s.epoch, N: s.ver.Load()}, nil
}

// AttrColumnSince is the conditional form of AttrColumn. If v carries this
// store's epoch and the caller already holds the first `have` rows of the
// column, only the attribute cells of rows[have:] are returned with
// delta=true (an empty slice means "not modified"). On an epoch mismatch —
// no cache, a different store, or a post-restore rebirth — the full column
// is returned with delta=false. The returned version is never fresher than
// the returned rows, so (cached rows + delta, returned version) is always
// a sound pair to revalidate with later.
func (s *EncryptedStore) AttrColumnSince(v EncVersion, have int) ([]EncRow, EncVersion, bool, error) {
	cur := EncVersion{Epoch: s.epoch, N: s.ver.Load()}
	rows := s.snapshot()
	if v.Epoch == s.epoch && have >= 0 && have <= len(rows) {
		tail := rows[have:]
		out := make([]EncRow, len(tail))
		for i, r := range tail {
			out[i] = EncRow{Addr: r.Addr, AttrCT: r.AttrCT}
		}
		return out, cur, true, nil
	}
	out := make([]EncRow, len(rows))
	for i, r := range rows {
		out[i] = EncRow{Addr: r.Addr, AttrCT: r.AttrCT}
	}
	return out, cur, false, nil
}

// RowsSince is the conditional form of Rows: full rows instead of the
// attribute column, same delta contract as AttrColumnSince.
func (s *EncryptedStore) RowsSince(v EncVersion, have int) ([]EncRow, EncVersion, bool, error) {
	cur := EncVersion{Epoch: s.epoch, N: s.ver.Load()}
	rows := s.snapshot()
	if v.Epoch == s.epoch && have >= 0 && have <= len(rows) {
		tail := rows[have:]
		out := make([]EncRow, len(tail))
		copy(out, tail)
		return out, cur, true, nil
	}
	out := make([]EncRow, len(rows))
	copy(out, rows)
	return out, cur, false, nil
}

// AppendIfLen appends rows only if the store currently holds exactly
// expectedLen rows — a compare-and-swap on the row count. It is the
// replica-repair primitive: an anti-entropy repairer that read a lagging
// replica at expectedLen rows and fetched the tail delta from a healthy
// peer can install that tail atomically, and if an owner write landed in
// between the CAS fails cleanly (the repairer re-probes next round)
// instead of interleaving repair rows with live writes at wrong
// addresses. Rows are installed with Add's ordering guarantees — rows
// published, tokens indexed, then the version bumped once per row — and
// the incoming Addr fields are ignored: addresses are assigned by append
// position, which the expectedLen check has just pinned to the source's.
func (s *EncryptedStore) AppendIfLen(rows []EncRow, expectedLen int) (int, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if len(s.rows) != expectedLen {
		return len(s.rows), fmt.Errorf("storage: append-if-len: store holds %d rows, caller expected %d", len(s.rows), expectedLen)
	}
	for _, r := range rows {
		addr := len(s.rows)
		s.rows = append(s.rows, EncRow{Addr: addr, TupleCT: r.TupleCT, AttrCT: r.AttrCT, Token: r.Token})
	}
	published := s.rows
	s.snap.Store(&published)
	for i := range rows {
		if tok := rows[i].Token; tok != nil {
			sh := s.shard(tok)
			k := string(tok)
			sh.mu.Lock()
			sh.m[k] = append(sh.m[k], expectedLen+i)
			sh.mu.Unlock()
		}
	}
	s.ver.Add(uint64(len(rows)))
	return len(published), nil
}

// SetVersionFloor raises the write counter to at least n. Snapshot restore
// uses it so a restored namespace never reports a version below the one it
// was saved at; the epoch is freshly drawn at construction regardless, so
// caches validated against the pre-restore store can never match.
func (s *EncryptedStore) SetVersionFloor(n uint64) {
	for {
		cur := s.ver.Load()
		if cur >= n || s.ver.CompareAndSwap(cur, n) {
			return
		}
	}
}
