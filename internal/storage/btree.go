package storage

import (
	"sync"

	"repro/internal/relation"
)

// BTree is an in-memory B+-tree mapping attribute values to lists of tuple
// positions. Leaves are chained for ordered range scans; it backs the range
// selection extension of QB. It is safe for concurrent use: lookups and
// range scans share a read lock, inserts take the write lock.
type BTree struct {
	mu     sync.RWMutex
	root   *btreeNode
	degree int // minimum degree t: nodes hold [t-1, 2t-1] keys
	size   int // number of distinct keys
}

type btreeNode struct {
	leaf     bool
	keys     []relation.Value
	postings [][]int      // leaf only: postings[i] are positions for keys[i]
	children []*btreeNode // internal only
	next     *btreeNode   // leaf chain
}

// NewBTree creates a tree with the given minimum degree (>= 2).
func NewBTree(degree int) *BTree {
	if degree < 2 {
		degree = 2
	}
	return &BTree{root: &btreeNode{leaf: true}, degree: degree}
}

// Len returns the number of distinct keys.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

func (n *btreeNode) findKey(v relation.Value) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid].Less(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < len(n.keys) && n.keys[lo].Equal(v)
	return lo, found
}

// Insert records that the tuple at position pos has value v.
func (t *BTree) Insert(v relation.Value, pos int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.root
	if len(r.keys) == 2*t.degree-1 {
		newRoot := &btreeNode{children: []*btreeNode{r}}
		t.splitChild(newRoot, 0)
		t.root = newRoot
	}
	t.insertNonFull(t.root, v, pos)
}

// splitChild splits parent's i-th (full) child. The caller holds t.mu.
func (t *BTree) splitChild(parent *btreeNode, i int) {
	deg := t.degree
	child := parent.children[i]
	sib := &btreeNode{leaf: child.leaf}
	if child.leaf {
		// Leaf split: sibling takes the upper half; the separator copied up
		// is the sibling's first key (B+-tree style).
		sib.keys = append(sib.keys, child.keys[deg-1:]...)
		sib.postings = append(sib.postings, child.postings[deg-1:]...)
		child.keys = child.keys[:deg-1]
		child.postings = child.postings[:deg-1]
		sib.next = child.next
		child.next = sib
		parent.keys = append(parent.keys, relation.Value{})
		copy(parent.keys[i+1:], parent.keys[i:])
		parent.keys[i] = sib.keys[0]
	} else {
		// Internal split: middle key moves up.
		mid := child.keys[deg-1]
		sib.keys = append(sib.keys, child.keys[deg:]...)
		sib.children = append(sib.children, child.children[deg:]...)
		child.keys = child.keys[:deg-1]
		child.children = child.children[:deg]
		parent.keys = append(parent.keys, relation.Value{})
		copy(parent.keys[i+1:], parent.keys[i:])
		parent.keys[i] = mid
	}
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = sib
}

// insertNonFull descends from n (known non-full) to a leaf and inserts
// v's posting there. The caller holds t.mu.
func (t *BTree) insertNonFull(n *btreeNode, v relation.Value, pos int) {
	for {
		i, found := n.findKey(v)
		if n.leaf {
			if found {
				n.postings[i] = append(n.postings[i], pos)
				return
			}
			n.keys = append(n.keys, relation.Value{})
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = v
			n.postings = append(n.postings, nil)
			copy(n.postings[i+1:], n.postings[i:])
			n.postings[i] = []int{pos}
			t.size++
			return
		}
		// Internal node: descend right of equal separators.
		if found {
			i++
		}
		if len(n.children[i].keys) == 2*t.degree-1 {
			t.splitChild(n, i)
			if n.keys[i].Less(v) || n.keys[i].Equal(v) {
				i++
			}
		}
		n = n.children[i]
	}
}

// Lookup returns the positions recorded for v (nil if absent).
func (t *BTree) Lookup(v relation.Value) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for {
		i, found := n.findKey(v)
		if n.leaf {
			if found {
				return n.postings[i]
			}
			return nil
		}
		if found {
			i++
		}
		n = n.children[i]
	}
}

// Range calls fn for every key in [lo, hi] in ascending order with its
// postings. Iteration stops early if fn returns false. The read lock is
// held for the whole scan, so fn must not insert into the same tree.
func (t *BTree) Range(lo, hi relation.Value, fn func(v relation.Value, positions []int) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		i, found := n.findKey(lo)
		if found {
			i++
		}
		n = n.children[i]
	}
	start, _ := n.findKey(lo)
	for n != nil {
		for i := start; i < len(n.keys); i++ {
			if hi.Less(n.keys[i]) {
				return
			}
			if !fn(n.keys[i], n.postings[i]) {
				return
			}
		}
		n = n.next
		start = 0
	}
}

// Keys returns all keys in ascending order; used in tests.
func (t *BTree) Keys() []relation.Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []relation.Value
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		out = append(out, n.keys...)
		n = n.next
	}
	return out
}
