package storage

import (
	"sync"
	"testing"
)

// TestEncStoreVersionNeverFresherThanTokenIndex property-tests the writer
// ordering the owner-side cache depends on: a reader that loads the
// version and then probes the token index must see every write the version
// counts. Every Add below indexes the same token, so the version counter
// and the posting-list length advance in lockstep — observing N with fewer
// than N addresses means the version was bumped before the token was
// indexed, the race that let a cached search memoise a pre-write posting
// list under a post-write version and serve stale results until the next
// write.
func TestEncStoreVersionNeverFresherThanTokenIndex(t *testing.T) {
	s := NewEncryptedStore()
	tok := []byte("hot-token")
	const writes = 20000

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var fails int
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := s.EncVersion()
				if err != nil {
					t.Error(err)
					return
				}
				hits := s.LookupToken(tok)
				if uint64(len(hits)) < v.N {
					if fails++; fails <= 3 {
						t.Errorf("observed version N=%d but only %d indexed addresses: version bumped before token insert", v.N, len(hits))
					}
				}
				// The row snapshot must be at least as fresh as the version
				// too, so every indexed address is fetchable.
				if n := s.Len(); uint64(n) < v.N {
					if fails++; fails <= 3 {
						t.Errorf("observed version N=%d but only %d published rows", v.N, n)
					}
				}
			}
		}()
	}

	for i := 0; i < writes; i++ {
		s.Add(nil, nil, tok)
	}
	close(stop)
	wg.Wait()
}
