// Package storage implements the cloud-side stores of the partitioned
// computation model: a plaintext store for the non-sensitive relation
// (hash-indexed, with a B+-tree for range scans) and an encrypted store for
// the sensitive relation (address-based fetch plus an optional token index
// for cloud-side-indexable techniques).
package storage

import "repro/internal/relation"

// HashIndex maps attribute values (by canonical key) to tuple positions.
type HashIndex struct {
	m map[string][]int
}

// NewHashIndex returns an empty index.
func NewHashIndex() *HashIndex { return &HashIndex{m: make(map[string][]int)} }

// Add records that the tuple at position pos has value v.
func (h *HashIndex) Add(v relation.Value, pos int) {
	k := v.Key()
	h.m[k] = append(h.m[k], pos)
}

// Lookup returns the positions of tuples holding v (nil if none).
func (h *HashIndex) Lookup(v relation.Value) []int { return h.m[v.Key()] }

// Len returns the number of distinct indexed values.
func (h *HashIndex) Len() int { return len(h.m) }
