// Package storage implements the cloud-side stores of the partitioned
// computation model: a plaintext store for the non-sensitive relation
// (hash-indexed, with a B+-tree for range scans) and an encrypted store for
// the sensitive relation (address-based fetch plus an optional token index
// for cloud-side-indexable techniques).
//
// All stores are safe for concurrent use: reads (lookups, scans, fetches)
// take shared locks and may proceed in parallel, writes take exclusive
// locks. Stored entries are append-only — the cloud never observes a
// deletion — so slices handed out by read paths stay valid after the lock
// is released.
package storage

import (
	"sync"

	"repro/internal/relation"
)

// HashIndex maps attribute values (by canonical key) to tuple positions.
// It is safe for concurrent use.
type HashIndex struct {
	mu sync.RWMutex
	m  map[string][]int
}

// NewHashIndex returns an empty index.
func NewHashIndex() *HashIndex { return &HashIndex{m: make(map[string][]int)} }

// Add records that the tuple at position pos has value v.
func (h *HashIndex) Add(v relation.Value, pos int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := v.Key()
	h.m[k] = append(h.m[k], pos)
}

// Lookup returns the positions of tuples holding v (nil if none). The
// returned slice is a snapshot: positions appended concurrently are not
// visible through it.
func (h *HashIndex) Lookup(v relation.Value) []int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.m[v.Key()]
}

// Len returns the number of distinct indexed values.
func (h *HashIndex) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.m)
}
