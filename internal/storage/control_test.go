package storage

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestClaimOwner: first claim wins, later and empty claims are ignored.
func TestClaimOwner(t *testing.T) {
	st := NewStore()
	if st.OwnerHash() != nil {
		t.Fatal("fresh store has an owner hash")
	}
	if st.ClaimOwner(nil) {
		t.Fatal("empty claim took effect")
	}
	if !st.ClaimOwner([]byte("hash-a")) {
		t.Fatal("first claim refused")
	}
	if st.ClaimOwner([]byte("hash-b")) {
		t.Fatal("second claim overwrote the owner")
	}
	if got := st.OwnerHash(); string(got) != "hash-a" {
		t.Fatalf("OwnerHash = %q, want hash-a", got)
	}
}

// TestStoreSetDrop: a dropped namespace disappears from the registry, a
// recreated one is fresh (empty, unclaimed), and Drop reports existence.
func TestStoreSetDrop(t *testing.T) {
	ss := NewStoreSet()
	st := ss.GetOrCreate("tenant")
	st.Enc().Add([]byte("ct"), nil, []byte("tok"))
	st.ClaimOwner([]byte("hash"))

	if ss.Drop("missing") {
		t.Fatal("Drop reported success for a namespace that never existed")
	}
	if !ss.Drop("tenant") {
		t.Fatal("Drop reported failure for an existing namespace")
	}
	if _, ok := ss.Get("tenant"); ok {
		t.Fatal("dropped namespace still registered")
	}
	fresh := ss.GetOrCreate("tenant")
	if fresh == st {
		t.Fatal("recreated namespace is the dropped store")
	}
	if fresh.Enc().Len() != 0 || fresh.OwnerHash() != nil {
		t.Fatal("recreated namespace inherited state from the dropped one")
	}
}

// TestStoreSetDropQuiesces: Drop must not return while an operation still
// holds the dropped store's read lock.
func TestStoreSetDropQuiesces(t *testing.T) {
	ss := NewStoreSet()
	st := ss.GetOrCreate("tenant")

	_, _, release := st.ReadView()
	dropped := make(chan struct{})
	go func() {
		ss.Drop("tenant")
		close(dropped)
	}()
	time.Sleep(20 * time.Millisecond) // let Drop reach the quiesce
	select {
	case <-dropped:
		t.Fatal("Drop returned while a read view was still held")
	default:
	}
	release()
	<-dropped
}

// TestEncStoreCompact: compaction preserves rows, addresses and token
// lookups exactly, under concurrent readers (-race covers the interleaving).
func TestEncStoreCompact(t *testing.T) {
	s := NewEncryptedStore()
	const rows = 100
	for i := 0; i < rows; i++ {
		s.Add([]byte(fmt.Sprintf("ct-%d", i)), []byte(fmt.Sprintf("attr-%d", i)), []byte(fmt.Sprintf("tok-%d", i%7)))
	}
	before := s.Rows()
	wantTok := s.LookupToken([]byte("tok-3"))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Rows()
					s.LookupToken([]byte("tok-3"))
				}
			}
		}()
	}
	if n := s.Compact(); n != rows {
		t.Fatalf("Compact = %d, want %d", n, rows)
	}
	close(stop)
	wg.Wait()

	if !reflect.DeepEqual(s.Rows(), before) {
		t.Fatal("Compact changed the row column")
	}
	if got := s.LookupToken([]byte("tok-3")); !reflect.DeepEqual(got, wantTok) {
		t.Fatalf("LookupToken after Compact = %v, want %v", got, wantTok)
	}
	if _, err := s.Fetch([]int{0, rows - 1}); err != nil {
		t.Fatalf("Fetch after Compact: %v", err)
	}
}

// TestStoreCompactExclusive: Store.Compact takes the store write lock, so
// it waits for in-flight read views like SetPlain does.
func TestStoreCompactExclusive(t *testing.T) {
	st := NewStore()
	st.Enc().Add([]byte("ct"), nil, nil)
	_, _, release := st.ReadView()
	done := make(chan int, 1)
	go func() { done <- st.Compact() }()
	time.Sleep(20 * time.Millisecond) // let Compact reach the lock
	select {
	case <-done:
		t.Fatal("Compact returned while a read view was still held")
	default:
	}
	release()
	if n := <-done; n != 1 {
		t.Fatalf("Compact = %d, want 1", n)
	}
}
