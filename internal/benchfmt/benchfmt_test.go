package benchfmt

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		want Result
		ok   bool
	}{
		{
			line: "BenchmarkRemoteQueryBatch/pipe/workers=4-8 \t 30\t  1760290 ns/op\t 145444 queries/sec\t 1783708 B/op\t 3710 allocs/op",
			want: Result{
				Name:       "BenchmarkRemoteQueryBatch/pipe/workers=4",
				Iterations: 30,
				Metrics: map[string]float64{
					"ns_per_op":       1760290,
					"queries_per_sec": 145444,
					"bytes_per_op":    1783708,
					"allocs_per_op":   3710,
				},
			},
			ok: true,
		},
		{
			// No -N suffix (GOMAXPROCS=1 runs print none).
			line: "BenchmarkQueryBatch/workers=1 100 500 ns/op",
			want: Result{
				Name:       "BenchmarkQueryBatch/workers=1",
				Iterations: 100,
				Metrics:    map[string]float64{"ns_per_op": 500},
			},
			ok: true,
		},
		{line: "goos: linux", ok: false},
		{line: "PASS", ok: false},
		{line: "BenchmarkBroken notanumber 5 ns/op", ok: false},
		{line: "", ok: false},
	}
	for _, c := range cases {
		got, ok := ParseLine(c.line)
		if ok != c.ok {
			t.Errorf("ParseLine(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseLine(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestNormaliseUnit(t *testing.T) {
	for unit, want := range map[string]string{
		"ns/op":     "ns_per_op",
		"B/op":      "bytes_per_op",
		"allocs/op": "allocs_per_op",
		"p99-us":    "p99_us",
		"foo/bar":   "foo_per_bar",
	} {
		if got := NormaliseUnit(unit); got != want {
			t.Errorf("NormaliseUnit(%q) = %q, want %q", unit, got, want)
		}
	}
}

// TestReportRoundTrip pins the on-disk shape: metrics are flattened into
// each benchmark object and survive a decode.
func TestReportRoundTrip(t *testing.T) {
	rep := Report{
		GeneratedUnix: 1730000000,
		GoOS:          "linux", GoArch: "amd64", GoMaxProcs: 1,
		Config: map[string]any{"tenants": 4.0},
		Benchmarks: []Result{{
			Name: "qbload/tenant=t00", Iterations: 1200,
			Metrics: map[string]float64{"queries_per_sec": 400, "p99_us": 1234},
		}},
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Benchmarks, rep.Benchmarks) {
		t.Errorf("round trip benchmarks = %+v, want %+v", back.Benchmarks, rep.Benchmarks)
	}
	if back.Config["tenants"] != 4.0 {
		t.Errorf("round trip config = %+v", back.Config)
	}
}
