// Package benchfmt defines the machine-readable benchmark document the
// repo's perf trajectory is tracked in (BENCH_remote.json,
// BENCH_load.json, ...), plus the parser that distils `go test -bench`
// text into it. Two producers share the schema: cmd/benchjson converts
// benchmark output piped through stdin, and cmd/qbload writes its
// open-loop load reports directly. Consumers index every metric by a
// normalised key (`queries/sec` -> `queries_per_sec`, `B/op` ->
// `bytes_per_op`), so dashboards read both files identically.
package benchfmt

import (
	"encoding/json"
	"strconv"
	"strings"
)

// Result is one benchmark (or one load-run series, e.g. a tenant).
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics holds every reported metric keyed by its normalised unit
	// (ns_per_op, queries_per_sec, bytes_per_op, allocs_per_op, p99_us, ...).
	Metrics map[string]float64 `json:"-"`
}

// MarshalJSON flattens Metrics into the object so consumers read
// `bench.ns_per_op` instead of `bench.metrics["ns_per_op"]`.
func (r Result) MarshalJSON() ([]byte, error) {
	flat := make(map[string]any, len(r.Metrics)+2)
	flat["name"] = r.Name
	flat["iterations"] = r.Iterations
	for k, v := range r.Metrics {
		flat[k] = v
	}
	return json.Marshal(flat)
}

// UnmarshalJSON is the inverse of MarshalJSON: unknown keys with numeric
// values land in Metrics. It exists so trajectory tooling (and tests) can
// read committed BENCH_*.json files back.
func (r *Result) UnmarshalJSON(data []byte) error {
	var flat map[string]any
	if err := json.Unmarshal(data, &flat); err != nil {
		return err
	}
	r.Metrics = map[string]float64{}
	for k, v := range flat {
		switch k {
		case "name":
			if s, ok := v.(string); ok {
				r.Name = s
			}
		case "iterations":
			if f, ok := v.(float64); ok {
				r.Iterations = int64(f)
			}
		default:
			if f, ok := v.(float64); ok {
				r.Metrics[k] = f
			}
		}
	}
	return nil
}

// Report is the whole document.
type Report struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoOS          string `json:"go_os"`
	GoArch        string `json:"go_arch"`
	GoMaxProcs    int    `json:"gomaxprocs"`
	// Config records the parameters the numbers were produced under
	// (tenants, rates, technique, chaos schedule, ...) so a trajectory
	// diff can tell a perf change from a config change. Producers that
	// have no parameters (benchjson) leave it empty.
	Config     map[string]any `json:"config,omitempty"`
	Benchmarks []Result       `json:"benchmarks"`
}

// Encode marshals the report as indented JSON with a trailing newline.
func (r Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// NormaliseUnit maps a benchmark unit to a JSON-friendly key.
func NormaliseUnit(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	}
	return strings.NewReplacer("/", "_per_", "-", "_").Replace(unit)
}

// ParseLine parses one `BenchmarkX-N  iters  value unit [value unit]...`
// line of `go test -bench` output; ok is false for non-benchmark lines.
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name = r.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[NormaliseUnit(fields[i+1])] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}
