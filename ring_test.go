package repro

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/wire"
	"repro/internal/workload"
)

// ringCluster is an in-process multi-node ring: n killable qbcloud
// equivalents (chaosCloud reuses the kill-listener-and-conns machinery
// from the reconnect tests), a coordinator over them, and the
// coordinator's directory served over the wire like qbring does.
type ringCluster struct {
	tok    []byte
	nodes  []*chaosCloud
	co     *ring.Coordinator
	coAddr string
}

func startRingCluster(t *testing.T, n, replicas int) *ringCluster {
	t.Helper()
	rc := &ringCluster{tok: []byte("root ring secret")}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cl := wire.NewCloud()
		cl.SetRingToken(rc.tok)
		srv := startChaosCloud(t, cl)
		rc.nodes = append(rc.nodes, srv)
		addrs[i] = srv.addr
	}
	co, err := ring.New(ring.Config{
		Nodes: addrs, Replicas: replicas, RingToken: rc.tok, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rc.co = co
	t.Cleanup(co.Stop)
	dirCloud := wire.NewCloud()
	dirCloud.SetRingDirectory(co.DirectoryBlob)
	dirCloud.SetRingRepair(func(ns string) error {
		co.RepairNamespace(ns)
		return nil
	})
	rc.coAddr = startChaosCloud(t, dirCloud).addr
	return rc
}

// replicasFor maps a namespace's placement (primary first) back to the
// killable node handles.
func (rc *ringCluster) replicasFor(t *testing.T, ns string) []*chaosCloud {
	t.Helper()
	placement := ring.Build(rc.co.Directory()).Placement(ns)
	out := make([]*chaosCloud, 0, len(placement))
	for _, n := range placement {
		for _, srv := range rc.nodes {
			if srv.addr == n.Addr {
				out = append(out, srv)
			}
		}
	}
	if len(out) != len(placement) {
		t.Fatalf("placement %v not covered by cluster nodes", placement)
	}
	return out
}

// restartEmpty brings a killed node back EMPTY on its old address — a
// machine replaced after losing its disk.
func (rc *ringCluster) restartEmpty(t *testing.T, srv *chaosCloud) {
	t.Helper()
	cl := wire.NewCloud()
	cl.SetRingToken(rc.tok)
	srv.restart(t, cl)
}

func storeInfoAt(t *testing.T, addr, ns string) wire.StoreInfo {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	info, err := c.StoreInfo(ns)
	if err != nil {
		t.Fatalf("StoreInfo(%s) on %s: %v", ns, addr, err)
	}
	return info
}

// TestRingClientMatchesInProcess is the replicated flavour of the
// observational-equivalence property the whole suite is built on: a
// client routed through a 3-node R=2 ring must return exactly the tuples
// AND log exactly the adversarial views of the in-process client.
// Replication multiplies where ciphertexts live, but it must not widen
// what any single adversary observes.
func TestRingClientMatchesInProcess(t *testing.T) {
	for _, tech := range []Technique{TechNoInd, TechDetIndex, TechArx} {
		t.Run(tech.String(), func(t *testing.T) {
			rc := startRingCluster(t, 3, 2)
			ds, err := workload.Generate(workload.GenSpec{
				Tuples: 160, DistinctValues: 16, Alpha: 0.4,
				AssocFraction: 0.5, Seed: 43,
			})
			if err != nil {
				t.Fatal(err)
			}
			mk := func(ringAddr string) *Client {
				c, err := NewClient(Config{
					MasterKey: []byte("ring equivalence"),
					Attr:      workload.Attr,
					Technique: tech,
					Seed:      seed(53),
					Ring:      ringAddr, // "" = in-process
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { c.Close() })
				return c
			}
			local, ringed := mk(""), mk(rc.coAddr)
			if err := local.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
				t.Fatal(err)
			}
			if err := ringed.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
				t.Fatal(err)
			}
			for _, w := range batchWorkload(ds, 16, 207) {
				want, err := local.Query(w)
				if err != nil {
					t.Fatalf("local Query(%v): %v", w, err)
				}
				got, err := ringed.Query(w)
				if err != nil {
					t.Fatalf("ring Query(%v): %v", w, err)
				}
				if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
					t.Errorf("Query(%v) via ring = %v, want %v", w, relation.IDs(got), relation.IDs(want))
				}
			}
			lv, rv := local.AdversarialViews(), ringed.AdversarialViews()
			if len(lv) != len(rv) {
				t.Fatalf("view counts differ: local %d, ring %d", len(lv), len(rv))
			}
			for i := range lv {
				if viewKey(lv[i]) != viewKey(rv[i]) {
					t.Errorf("view %d: ring %s != local %s", i, viewKey(rv[i]), viewKey(lv[i]))
				}
			}
			// The namespace really is replicated: both placement replicas hold
			// identical row counts, the off-placement node holds nothing.
			replicated := map[string]bool{}
			for _, srv := range rc.replicasFor(t, wire.DefaultStore) {
				replicated[srv.addr] = true
			}
			var want wire.StoreInfo
			for addr := range replicated {
				info := storeInfoAt(t, addr, wire.DefaultStore)
				if !info.Exists {
					t.Fatalf("placement replica %s does not hold the namespace", addr)
				}
				if want.Exists && (info.EncRows != want.EncRows || info.PlainTuples != want.PlainTuples) {
					t.Fatalf("replicas diverge: %+v vs %+v", info, want)
				}
				want = info
			}
			for _, srv := range rc.nodes {
				if !replicated[srv.addr] {
					if info := storeInfoAt(t, srv.addr, wire.DefaultStore); info.Exists {
						t.Fatalf("off-placement node %s holds the namespace: %+v", srv.addr, info)
					}
				}
			}
		})
	}
}

// TestRingClientSurvivesNodeKillAndRejoin is the ISSUE's exit criterion,
// in-process: kill 1 of 3 nodes mid-workload — queries keep answering
// with results and adversarial views identical to an untouched in-process
// client — then rejoin the node EMPTY on the same address and watch
// anti-entropy rebuild it and the write path readmit it.
func TestRingClientSurvivesNodeKillAndRejoin(t *testing.T) {
	rc := startRingCluster(t, 3, 2)
	mk := func(ringAddr string) *Client {
		c, err := NewClient(Config{
			MasterKey: []byte("ring chaos"),
			Attr:      "EId",
			Technique: TechNoInd,
			Seed:      seed(59),
			Ring:      ringAddr,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	ref, ringed := mk(""), mk(rc.coAddr)
	emp := workload.Employee()
	if err := ref.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	if err := ringed.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}

	eids := []string{"E101", "E259", "E199", "E152", "E000"}
	checkParity := func(phase string) {
		t.Helper()
		for _, eid := range eids {
			want, err := ref.Query(Str(eid))
			if err != nil {
				t.Fatalf("%s: reference Query(%s): %v", phase, eid, err)
			}
			got, err := ringed.Query(Str(eid))
			if err != nil {
				t.Fatalf("%s: ring Query(%s): %v", phase, eid, err)
			}
			if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
				t.Errorf("%s: Query(%s) = %v, want %v", phase, eid, relation.IDs(got), relation.IDs(want))
			}
		}
	}
	checkParity("healthy")

	// Kill the PRIMARY replica mid-workload. The store's reads fail over
	// to the surviving replica; nothing surfaces to the owner.
	replicas := rc.replicasFor(t, wire.DefaultStore)
	primary, survivor := replicas[0], replicas[1]
	t.Logf("killing primary replica %s", primary.addr)
	primary.kill()
	checkParity("degraded")

	// The node rejoins empty on its old address; one anti-entropy sweep
	// rebuilds the namespace from the survivor via snapshot transfer.
	rc.restartEmpty(t, primary)
	if st := rc.co.RepairOnce(); st.Snapshots == 0 {
		t.Fatalf("rejoin sweep stats = %+v, want a snapshot transfer", st)
	}
	srcInfo := storeInfoAt(t, survivor.addr, wire.DefaultStore)
	gotInfo := storeInfoAt(t, primary.addr, wire.DefaultStore)
	if !gotInfo.Exists || gotInfo.EncRows != srcInfo.EncRows || gotInfo.PlainTuples != srcInfo.PlainTuples {
		t.Fatalf("rejoined replica %+v != survivor %+v", gotInfo, srcInfo)
	}
	checkParity("rejoined")

	// Let the router's down-cooldown lapse, then write through the ring:
	// the repaired replica takes the write again (readmission), and both
	// replicas advance in lockstep.
	time.Sleep(600 * time.Millisecond)
	tp := Tuple{ID: 900, Values: []Value{
		Str("E900"), Str("Riley"), Str("900-00-0000"), Int(64), Int(88), Str("Design"),
	}}
	if err := ref.Insert(tp, true); err != nil {
		t.Fatal(err)
	}
	if err := ringed.Insert(tp, true); err != nil {
		t.Fatalf("ring insert after rejoin: %v", err)
	}
	for _, eid := range []string{"E900", "E101"} {
		want, err := ref.Query(Str(eid))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ringed.Query(Str(eid))
		if err != nil {
			t.Fatalf("post-insert ring Query(%s): %v", eid, err)
		}
		if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
			t.Errorf("post-insert Query(%s) = %v, want %v", eid, relation.IDs(got), relation.IDs(want))
		}
	}
	after := storeInfoAt(t, primary.addr, wire.DefaultStore)
	afterSrc := storeInfoAt(t, survivor.addr, wire.DefaultStore)
	if after.EncRows != afterSrc.EncRows || after.EncRows <= srcInfo.EncRows {
		t.Fatalf("write after readmission: rejoined %+v vs survivor %+v (pre-insert %d rows)",
			after, afterSrc, srcInfo.EncRows)
	}

	// Full-history adversarial-view equivalence across the whole story:
	// outsource, healthy reads, failover reads, rejoin reads, insert.
	rv, wv := ringed.AdversarialViews(), ref.AdversarialViews()
	if len(rv) != len(wv) {
		t.Fatalf("view counts differ: ring %d, reference %d", len(rv), len(wv))
	}
	for i := range rv {
		if viewKey(rv[i]) != viewKey(wv[i]) {
			t.Errorf("view %d: ring %s != reference %s", i, viewKey(rv[i]), viewKey(wv[i]))
		}
	}
}

// TestRingConfigValidation: Ring and CloudAddr are mutually exclusive,
// and ring mode enforces the same store-name hygiene as direct mode.
func TestRingConfigValidation(t *testing.T) {
	if _, err := NewClient(Config{
		MasterKey: []byte("k"), Attr: "K",
		Ring: "127.0.0.1:1", CloudAddr: "127.0.0.1:2",
	}); err == nil {
		t.Fatal("Ring+CloudAddr accepted")
	}
	if _, err := NewClient(Config{
		MasterKey: []byte("k"), Attr: "K",
		Ring: "127.0.0.1:1", Store: "emp/columns",
	}); err == nil {
		t.Fatal("reserved store name accepted in ring mode")
	}
	if _, err := NewClient(Config{
		MasterKey: []byte("k"), Attr: "K", Ring: "127.0.0.1:1",
	}); err == nil {
		t.Fatal("unreachable coordinator accepted")
	}
}
